// points.h — synthetic point sets for k-means, EM and k-NN.
//
// The paper's clustering experiments used 1.4 GB datasets of points in a
// "high-dimensional space"; we generate Gaussian mixtures with known
// (planted) component centres so application tests can assert that the
// parallel algorithms actually recover structure, and we stamp a virtual
// scale so the repository charges paper-scale disk/network time.
#pragma once

#include <cstdint>
#include <vector>

#include "repository/dataset.h"

namespace fgp::datagen {

struct PointsSpec {
  std::uint64_t num_points = 10000;
  int dim = 8;
  int num_components = 4;    ///< planted mixture components
  double center_box = 10.0;  ///< centres drawn uniformly in [-box, box]^dim
  double noise_sigma = 0.6;  ///< per-coordinate Gaussian spread
  std::uint64_t points_per_chunk = 1000;
  double virtual_scale = 1.0;  ///< virtual bytes per real byte
  std::uint64_t seed = 42;
  /// Host threads for chunk synthesis. Chunk payloads are bit-identical
  /// for every value: each chunk consumes its own serially-forked RNG.
  int threads = 1;
  std::string name = "points";
};

struct PointsDataset {
  repository::ChunkedDataset dataset;
  int dim = 0;
  std::uint64_t num_points = 0;
  /// Planted component centres, row-major [num_components x dim].
  std::vector<double> true_centers;
};

/// Generates the mixture. Chunk payloads are row-major doubles
/// (points_per_chunk x dim); the final chunk may be shorter.
PointsDataset generate_points(const PointsSpec& spec);

/// Convenience: a PointsSpec whose virtual size is `virtual_mb` megabytes
/// while the real payload stays at `real_mb` megabytes.
PointsSpec scaled_points_spec(double virtual_mb, double real_mb, int dim,
                              std::uint64_t seed);

/// Labeled variant for classification workloads (k-NN classifier, neural
/// network): each row is [label, x_0 … x_{dim-1}] as doubles (dim+1 values
/// per point), where the label is the planted mixture component the point
/// was drawn from — the ground truth classifiers are tested against.
struct LabeledPointsDataset {
  repository::ChunkedDataset dataset;
  int dim = 0;  ///< feature dimension (payload rows have dim+1 values)
  int num_classes = 0;
  std::uint64_t num_points = 0;
  std::vector<double> true_centers;  ///< [num_classes x dim]
};

LabeledPointsDataset generate_labeled_points(const PointsSpec& spec);

}  // namespace fgp::datagen
