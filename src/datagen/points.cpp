#include "datagen/points.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fgp::datagen {

namespace {

/// Pre-forks one RNG per chunk in chunk order. fork() advances the parent
/// stream, so this must stay serial — it is what makes the payload bytes a
/// function of the spec alone, never of spec.threads.
std::vector<util::Rng> fork_chunk_rngs(util::Rng& rng,
                                       std::uint64_t chunk_count) {
  std::vector<util::Rng> rngs;
  rngs.reserve(chunk_count);
  for (std::uint64_t i = 0; i < chunk_count; ++i)
    rngs.push_back(rng.fork(i + 1));
  return rngs;
}

/// Runs fill(i) for every chunk index, fanning out over a transient pool
/// when the spec asks for more than one thread.
template <typename Fn>
void for_each_chunk(std::uint64_t chunk_count, int threads, Fn&& fill) {
  if (threads > 1 && chunk_count > 1) {
    util::ThreadPool pool(std::min<std::size_t>(
        static_cast<std::size_t>(threads), chunk_count));
    pool.parallel_for(static_cast<std::size_t>(chunk_count), fill);
  } else {
    for (std::uint64_t i = 0; i < chunk_count; ++i)
      fill(static_cast<std::size_t>(i));
  }
}

}  // namespace

PointsDataset generate_points(const PointsSpec& spec) {
  FGP_CHECK(spec.num_points > 0);
  FGP_CHECK(spec.dim > 0);
  FGP_CHECK(spec.num_components > 0);
  FGP_CHECK(spec.points_per_chunk > 0);

  util::Rng rng(spec.seed);

  PointsDataset out;
  out.dim = spec.dim;
  out.num_points = spec.num_points;

  const std::size_t k = static_cast<std::size_t>(spec.num_components);
  const std::size_t d = static_cast<std::size_t>(spec.dim);
  out.true_centers.resize(k * d);
  for (auto& c : out.true_centers)
    c = rng.uniform(-spec.center_box, spec.center_box);

  repository::DatasetMeta meta;
  meta.name = spec.name;
  meta.schema = "f64 point dim=" + std::to_string(spec.dim);
  meta.seed = spec.seed;
  out.dataset = repository::ChunkedDataset(meta);

  const std::uint64_t chunk_count =
      (spec.num_points + spec.points_per_chunk - 1) / spec.points_per_chunk;
  std::vector<util::Rng> rngs = fork_chunk_rngs(rng, chunk_count);
  std::vector<repository::Chunk> chunks(chunk_count);
  for_each_chunk(chunk_count, spec.threads, [&](std::size_t i) {
    const std::uint64_t first =
        static_cast<std::uint64_t>(i) * spec.points_per_chunk;
    const std::uint64_t take =
        std::min(spec.points_per_chunk, spec.num_points - first);
    std::vector<double> payload(take * d);
    util::Rng& crng = rngs[i];
    for (std::uint64_t p = 0; p < take; ++p) {
      const std::size_t comp = crng.next_below(k);
      for (std::size_t j = 0; j < d; ++j)
        payload[p * d + j] = out.true_centers[comp * d + j] +
                             spec.noise_sigma * crng.next_gaussian();
    }
    chunks[i] = repository::make_chunk(static_cast<repository::ChunkId>(i),
                                       payload, spec.virtual_scale);
  });
  for (auto& chunk : chunks) out.dataset.add_chunk(std::move(chunk));
  return out;
}

LabeledPointsDataset generate_labeled_points(const PointsSpec& spec) {
  FGP_CHECK(spec.num_points > 0);
  FGP_CHECK(spec.dim > 0);
  FGP_CHECK(spec.num_components > 0);
  FGP_CHECK(spec.points_per_chunk > 0);

  util::Rng rng(spec.seed);

  LabeledPointsDataset out;
  out.dim = spec.dim;
  out.num_classes = spec.num_components;
  out.num_points = spec.num_points;

  const std::size_t k = static_cast<std::size_t>(spec.num_components);
  const std::size_t d = static_cast<std::size_t>(spec.dim);
  out.true_centers.resize(k * d);
  for (auto& c : out.true_centers)
    c = rng.uniform(-spec.center_box, spec.center_box);

  repository::DatasetMeta meta;
  meta.name = spec.name;
  meta.schema = "f64 labeled point dim=" + std::to_string(spec.dim);
  meta.seed = spec.seed;
  out.dataset = repository::ChunkedDataset(meta);

  const std::size_t row = d + 1;
  const std::uint64_t chunk_count =
      (spec.num_points + spec.points_per_chunk - 1) / spec.points_per_chunk;
  std::vector<util::Rng> rngs = fork_chunk_rngs(rng, chunk_count);
  std::vector<repository::Chunk> chunks(chunk_count);
  for_each_chunk(chunk_count, spec.threads, [&](std::size_t i) {
    const std::uint64_t first =
        static_cast<std::uint64_t>(i) * spec.points_per_chunk;
    const std::uint64_t take =
        std::min(spec.points_per_chunk, spec.num_points - first);
    std::vector<double> payload(take * row);
    util::Rng& crng = rngs[i];
    for (std::uint64_t p = 0; p < take; ++p) {
      const std::size_t comp = crng.next_below(k);
      payload[p * row] = static_cast<double>(comp);
      for (std::size_t j = 0; j < d; ++j)
        payload[p * row + 1 + j] = out.true_centers[comp * d + j] +
                                   spec.noise_sigma * crng.next_gaussian();
    }
    chunks[i] = repository::make_chunk(static_cast<repository::ChunkId>(i),
                                       payload, spec.virtual_scale);
  });
  for (auto& chunk : chunks) out.dataset.add_chunk(std::move(chunk));
  return out;
}

PointsSpec scaled_points_spec(double virtual_mb, double real_mb, int dim,
                              std::uint64_t seed) {
  FGP_CHECK(virtual_mb > 0 && real_mb > 0 && dim > 0);
  PointsSpec spec;
  spec.dim = dim;
  spec.seed = seed;
  const double bytes_per_point = static_cast<double>(dim) * sizeof(double);
  spec.num_points =
      static_cast<std::uint64_t>(real_mb * 1e6 / bytes_per_point);
  // Chunk the dataset at a roughly constant *virtual* chunk size (~5.5 MB,
  // the "manageable for the repository nodes" unit): bigger datasets get
  // more chunks, exactly like a real repository, so per-chunk costs scale
  // with dataset size the way the prediction model assumes. The count is
  // rounded to a multiple of 16 so the evaluation grid's node counts
  // divide it evenly — GB-scale datasets have hundreds of chunks and no
  // material imbalance; ragged MB-scale chunking would fake one.
  std::uint64_t chunks =
      static_cast<std::uint64_t>(virtual_mb / 5.5 / 16.0 + 0.5) * 16;
  chunks = std::clamp<std::uint64_t>(chunks, 16, 1024);
  spec.num_points = std::max<std::uint64_t>(1, spec.num_points / chunks) *
                    chunks;
  spec.points_per_chunk = spec.num_points / chunks;
  spec.virtual_scale = virtual_mb / real_mb;
  return spec;
}

}  // namespace fgp::datagen
