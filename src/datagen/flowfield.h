// flowfield.h — synthetic CFD simulation output for the vortex-detection
// application.
//
// The paper's vortex application mines "volumetric regions representing
// features in a CFD simulation output" (710 MB / 1.85 GB datasets). We
// generate a 2-D velocity field with planted Rankine vortices superposed
// on a uniform background flow plus noise, chunked into row bands. Bands
// are stored with a one-row halo on each side — the paper's "special
// approach to partitioning data (overlapping data instances from
// neighboring partitions)" that lets the detection step run without
// communication. The planted vortex list is the ground truth the
// application tests assert against (vortices may straddle band
// boundaries, which exercises the cross-node join in the global combine).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "repository/dataset.h"

namespace fgp::datagen {

/// One velocity sample.
struct Vec2f {
  float u = 0.0f;
  float v = 0.0f;
};

/// Leading bytes of every flow-field chunk payload. The chunk *owns* rows
/// [row0, row0+rows) but *stores* [stored_row0, stored_row0+stored_rows),
/// which includes the halo rows needed for derivative stencils.
struct FieldChunkHeader {
  std::uint32_t row0 = 0;
  std::uint32_t rows = 0;
  std::uint32_t stored_row0 = 0;
  std::uint32_t stored_rows = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;  ///< total grid height
};

/// Typed view into a flow-field chunk.
struct FieldChunkView {
  FieldChunkHeader header;
  std::span<const Vec2f> cells;  ///< row-major, stored_rows x width

  /// Velocity at global coordinates; (gy must lie in the stored range).
  const Vec2f& at(std::uint32_t gy, std::uint32_t gx) const {
    return cells[static_cast<std::size_t>(gy - header.stored_row0) *
                     header.width +
                 gx];
  }
};

/// Parses a chunk produced by generate_flowfield; throws on malformed size.
FieldChunkView parse_field_chunk(const repository::Chunk& chunk);

struct PlantedVortex {
  double cx = 0.0;
  double cy = 0.0;
  double core_radius = 0.0;
  double circulation = 0.0;  ///< signed strength
};

struct FlowSpec {
  int width = 192;
  int height = 192;
  int num_vortices = 5;
  double min_radius = 6.0;
  double max_radius = 14.0;
  double background_u = 0.15;  ///< uniform free-stream velocity
  double noise = 0.01;
  int rows_per_chunk = 16;
  double virtual_scale = 1.0;
  std::uint64_t seed = 7;
  std::string name = "flowfield";
};

struct FlowDataset {
  repository::ChunkedDataset dataset;
  int width = 0;
  int height = 0;
  std::vector<PlantedVortex> vortices;
};

FlowDataset generate_flowfield(const FlowSpec& spec);

}  // namespace fgp::datagen
