#include "datagen/lattice.h"

#include <cstring>
#include <set>

#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace fgp::datagen {

LatticeChunkView parse_lattice_chunk(const repository::Chunk& chunk) {
  const auto& payload = chunk.payload();
  FGP_CHECK_MSG(payload.size() >= sizeof(LatticeChunkHeader),
                "lattice chunk " << chunk.id() << " too small for header");
  LatticeChunkView view;
  std::memcpy(&view.header, payload.data(), sizeof(LatticeChunkHeader));
  const std::size_t atom_bytes = payload.size() - sizeof(LatticeChunkHeader);
  FGP_CHECK_MSG(atom_bytes % sizeof(Atom) == 0,
                "lattice chunk " << chunk.id() << ": ragged atom array");
  view.atoms = {
      reinterpret_cast<const Atom*>(payload.data() + sizeof(LatticeChunkHeader)),
      atom_bytes / sizeof(Atom)};
  return view;
}

namespace {

using Cell = std::array<int, 3>;

/// Grows a connected cluster of `target` cells from `seed` by random
/// face-adjacent steps, staying inside the lattice and off reserved cells.
std::vector<Cell> grow_cluster(Cell seed, int target, int nx, int ny, int nz,
                               const std::set<Cell>& reserved,
                               util::Rng& rng) {
  std::vector<Cell> cells{seed};
  std::set<Cell> mine{seed};
  static constexpr int kDirs[6][3] = {{1, 0, 0},  {-1, 0, 0}, {0, 1, 0},
                                      {0, -1, 0}, {0, 0, 1},  {0, 0, -1}};
  int attempts = 0;
  while (static_cast<int>(cells.size()) < target && attempts < 64) {
    ++attempts;
    const Cell& base = cells[rng.next_below(cells.size())];
    const auto& d = kDirs[rng.next_below(6)];
    Cell next{base[0] + d[0], base[1] + d[1], base[2] + d[2]};
    if (next[0] < 0 || next[0] >= nx || next[1] < 0 || next[1] >= ny ||
        next[2] < 0 || next[2] >= nz)
      continue;
    if (mine.count(next) || reserved.count(next)) continue;
    mine.insert(next);
    cells.push_back(next);
  }
  return cells;
}

/// Reserves a cluster's cells plus a one-cell halo so planted defects stay
/// separated (ground-truth counting depends on it).
void reserve_with_halo(const std::vector<Cell>& cells, int nx, int ny, int nz,
                       std::set<Cell>& reserved) {
  for (const auto& c : cells)
    for (int dx = -1; dx <= 1; ++dx)
      for (int dy = -1; dy <= 1; ++dy)
        for (int dz = -1; dz <= 1; ++dz) {
          Cell h{c[0] + dx, c[1] + dy, c[2] + dz};
          if (h[0] < 0 || h[0] >= nx || h[1] < 0 || h[1] >= ny || h[2] < 0 ||
              h[2] >= nz)
            continue;
          reserved.insert(h);
        }
}

bool cluster_clear(const std::vector<Cell>& cells,
                   const std::set<Cell>& reserved) {
  for (const auto& c : cells)
    if (reserved.count(c)) return false;
  return true;
}

}  // namespace

LatticeDataset generate_lattice(const LatticeSpec& spec) {
  FGP_CHECK(spec.nx > 2 && spec.ny > 2 && spec.nz > 2);
  FGP_CHECK(spec.zslabs_per_chunk > 0);
  FGP_CHECK(spec.max_cluster_cells >= 1);

  util::Rng rng(spec.seed);
  LatticeDataset out;
  out.nx = spec.nx;
  out.ny = spec.ny;
  out.nz = spec.nz;

  std::set<Cell> reserved;
  auto plant = [&](DefectKind kind, int count) {
    for (int i = 0; i < count; ++i) {
      for (int attempt = 0; attempt < 200; ++attempt) {
        Cell seed{static_cast<int>(rng.next_below(spec.nx)),
                  static_cast<int>(rng.next_below(spec.ny)),
                  static_cast<int>(rng.next_below(spec.nz))};
        if (reserved.count(seed)) continue;
        const int target =
            1 + static_cast<int>(rng.next_below(spec.max_cluster_cells));
        auto cells = grow_cluster(seed, target, spec.nx, spec.ny, spec.nz,
                                  reserved, rng);
        if (!cluster_clear(cells, reserved)) continue;
        reserve_with_halo(cells, spec.nx, spec.ny, spec.nz, reserved);
        out.defects.push_back({kind, cells});
        break;
      }
    }
  };
  plant(DefectKind::Vacancy, spec.num_vacancy_clusters);
  plant(DefectKind::Interstitial, spec.num_interstitials);
  plant(DefectKind::Displaced, spec.num_displaced_clusters);

  // Index planted cells for the generation sweep.
  std::set<Cell> vacancy_cells, interstitial_cells, displaced_cells;
  for (const auto& d : out.defects) {
    auto& target = d.kind == DefectKind::Vacancy      ? vacancy_cells
                   : d.kind == DefectKind::Interstitial ? interstitial_cells
                                                        : displaced_cells;
    for (const auto& c : d.cells) target.insert(c);
  }

  repository::DatasetMeta meta;
  meta.name = spec.name;
  meta.schema = "lattice atoms " + std::to_string(spec.nx) + "x" +
                std::to_string(spec.ny) + "x" + std::to_string(spec.nz);
  meta.seed = spec.seed;
  out.dataset = repository::ChunkedDataset(meta);

  const float tol = 0.25f;
  const std::size_t chunk_count = static_cast<std::size_t>(
      (spec.nz + spec.zslabs_per_chunk - 1) / spec.zslabs_per_chunk);

  // Per-slab RNG streams are forked serially in slab order (fork advances
  // the parent), so every payload is a function of the spec alone — never
  // of spec.threads. The planted-cell sets are read-only from here on,
  // which is what makes the slab sweep safe to fan out.
  std::vector<util::Rng> rngs;
  rngs.reserve(chunk_count);
  for (std::size_t i = 0; i < chunk_count; ++i) rngs.push_back(rng.fork(i + 1));

  std::vector<repository::Chunk> chunks(chunk_count);
  const auto fill_slab = [&](std::size_t i) {
    const int z0 = static_cast<int>(i) * spec.zslabs_per_chunk;
    const int zslabs = std::min(spec.zslabs_per_chunk, spec.nz - z0);
    std::vector<Atom> atoms;
    atoms.reserve(static_cast<std::size_t>(spec.nx) * spec.ny * zslabs);
    util::Rng& crng = rngs[i];

    for (int z = z0; z < z0 + zslabs; ++z) {
      for (int y = 0; y < spec.ny; ++y) {
        for (int x = 0; x < spec.nx; ++x) {
          const Cell cell{x, y, z};
          if (vacancy_cells.count(cell)) continue;  // atom missing

          Atom a{static_cast<float>(
                     x + spec.thermal_sigma * crng.next_gaussian()),
                 static_cast<float>(
                     y + spec.thermal_sigma * crng.next_gaussian()),
                 static_cast<float>(
                     z + spec.thermal_sigma * crng.next_gaussian())};
          if (displaced_cells.count(cell)) {
            // Push well past the tolerance but keep the atom in its cell.
            a.x = static_cast<float>(x + 0.38);
            a.y = static_cast<float>(y + 0.12);
          }
          atoms.push_back(a);

          if (interstitial_cells.count(cell)) {
            // An extra atom squeezed into the same cell.
            atoms.push_back({static_cast<float>(x + 0.42),
                             static_cast<float>(y + 0.42),
                             static_cast<float>(z)});
          }
        }
      }
    }

    LatticeChunkHeader header;
    header.z0 = static_cast<std::uint32_t>(z0);
    header.zslabs = static_cast<std::uint32_t>(zslabs);
    header.nx = static_cast<std::uint32_t>(spec.nx);
    header.ny = static_cast<std::uint32_t>(spec.ny);
    header.nz = static_cast<std::uint32_t>(spec.nz);
    header.displacement_tol = tol;

    std::vector<std::uint8_t> payload(sizeof(header) +
                                      atoms.size() * sizeof(Atom));
    std::memcpy(payload.data(), &header, sizeof(header));
    if (!atoms.empty())
      std::memcpy(payload.data() + sizeof(header), atoms.data(),
                  atoms.size() * sizeof(Atom));
    chunks[i] = repository::Chunk(static_cast<repository::ChunkId>(i),
                                  std::move(payload), spec.virtual_scale);
  };
  if (spec.threads > 1 && chunk_count > 1) {
    util::ThreadPool pool(std::min<std::size_t>(
        static_cast<std::size_t>(spec.threads), chunk_count));
    pool.parallel_for(chunk_count, fill_slab);
  } else {
    for (std::size_t i = 0; i < chunk_count; ++i) fill_slab(i);
  }
  for (auto& chunk : chunks) out.dataset.add_chunk(std::move(chunk));
  return out;
}

}  // namespace fgp::datagen
