#include "obs/snapshot_ring.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace fgp::obs {

SnapshotRing::SnapshotRing(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void SnapshotRing::capture(const Registry& registry, double host_seconds) {
  Snapshot snap;
  snap.host_seconds = host_seconds;
  snap.deterministic = registry.scalar_values(Domain::Deterministic);
  snap.host = registry.scalar_values(Domain::Host);
  std::lock_guard lock(mu_);
  snap.seq = captured_;
  captured_ += 1;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(snap));
    return;
  }
  ring_[next_] = std::move(snap);
  next_ = (next_ + 1) % capacity_;
}

std::uint64_t SnapshotRing::captured() const {
  std::lock_guard lock(mu_);
  return captured_;
}

std::vector<SnapshotRing::Snapshot> SnapshotRing::snapshots() const {
  std::lock_guard lock(mu_);
  std::vector<Snapshot> out;
  out.reserve(ring_.size());
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void SnapshotRing::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  next_ = 0;
  captured_ = 0;
}

std::string SnapshotRing::to_json(bool include_host) const {
  const std::vector<Snapshot> list = snapshots();
  std::uint64_t captured_now = 0;
  {
    std::lock_guard lock(mu_);
    captured_now = captured_;
  }
  const auto emit_scalars =
      [](std::ostringstream& os,
         const std::vector<std::pair<std::string, double>>& scalars) {
        os << "{";
        for (std::size_t i = 0; i < scalars.size(); ++i) {
          if (i > 0) os << ", ";
          os << "\"" << json::escape(scalars[i].first)
             << "\": " << json::format_number(scalars[i].second);
        }
        os << "}";
      };
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"fgpred-snapshots-v1\",\n";
  os << "  \"capacity\": " << capacity_ << ",\n";
  os << "  \"captured\": " << captured_now << ",\n";
  os << "  \"snapshots\": [";
  for (std::size_t i = 0; i < list.size(); ++i) {
    const Snapshot& s = list[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    os << "{\"seq\": " << s.seq;
    if (include_host)
      os << ", \"host_seconds\": " << json::format_number(s.host_seconds);
    os << ", \"deterministic\": ";
    emit_scalars(os, s.deterministic);
    if (include_host) {
      os << ", \"host\": ";
      emit_scalars(os, s.host);
    }
    os << "}";
  }
  if (!list.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

}  // namespace fgp::obs
