#include "obs/pool.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace fgp::obs {

void attach_pool_tracing(util::ThreadPool& pool, TraceRecorder* trace) {
  if (trace == nullptr) {
    pool.set_task_observer(nullptr);
    return;
  }
  pool.set_task_observer(
      [trace](std::size_t n, double begin_s, double end_s) {
        // The pool measures against its own epoch; re-anchor the span's end
        // at the recorder's host clock so every host event shares one
        // timeline. host_span drops the event unless host recording is on.
        const double dur = std::max(0.0, end_s - begin_s);
        const double now = trace->host_now();
        trace->host_span("pool", "parallel_for n=" + std::to_string(n),
                         std::max(0.0, now - dur), now);
      });
}

void record_pool_stats(const util::PoolStats& stats, Registry& metrics,
                       const std::string& prefix) {
  metrics.set(prefix + ".parallel_for_calls",
              static_cast<double>(stats.parallel_for_calls), Domain::Host);
  metrics.set(prefix + ".blocks_total",
              static_cast<double>(stats.blocks_total), Domain::Host);
  metrics.set(prefix + ".blocks_by_helpers",
              static_cast<double>(stats.blocks_by_helpers), Domain::Host);
  metrics.set(prefix + ".tasks_submitted",
              static_cast<double>(stats.tasks_submitted), Domain::Host);
}

}  // namespace fgp::obs
