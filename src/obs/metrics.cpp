#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/json.h"
#include "util/check.h"

namespace fgp::obs {

void Histogram::observe(double v) {
  // The smallest b with v <= upper_bound(b) = 10^(b-9), located by the
  // inverse (ceil(log10 v) + 9) instead of a 15-pow linear scan; the
  // one-step adjustments absorb pow/log10 disagreement exactly at the
  // decade edges (pinned by tests/test_obs.cpp). NaN and v <= 1e-9 take
  // the first branch into bucket 0, as the scan did.
  int b = 0;
  if (v > upper_bound(0)) {
    b = std::clamp(static_cast<int>(std::ceil(std::log10(v))) + 9, 0,
                   kBuckets - 1);
    while (b > 0 && v <= upper_bound(b - 1)) --b;
    while (b < kBuckets - 1 && v > upper_bound(b)) ++b;
  }
  buckets[static_cast<std::size_t>(b)] += 1;
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  count += 1;
  sum += v;
}

double Histogram::upper_bound(int i) {
  // le 1e-9, le 1e-8, ..., le 1e4, +inf.
  if (i >= kBuckets - 1) return HUGE_VAL;
  return std::pow(10.0, static_cast<double>(i - 9));
}

Registry::Metric& Registry::metric_locked(Domain domain, std::string_view name,
                                          Kind kind) {
  auto& m = domain == Domain::Deterministic ? det_ : host_;
  auto it = m.find(name);
  if (it == m.end()) {
    it = m.emplace(std::string(name), Metric{}).first;
    it->second.kind = kind;
  }
  FGP_CHECK_MSG(it->second.kind == kind,
                "metric '" << std::string(name)
                           << "' already registered with a different kind");
  return it->second;
}

void Registry::add(std::string_view name, double v, Domain domain) {
  std::lock_guard lock(mu_);
  metric_locked(domain, name, Kind::Counter).value += v;
}

void Registry::Counter::add(double v) const {
  if (metric_ == nullptr) return;
  std::lock_guard lock(owner_->mu_);
  metric_->value += v;
}

Registry::Counter Registry::counter(Registry* registry, std::string_view name,
                                    Domain domain) {
  if (registry == nullptr) return {};
  std::lock_guard lock(registry->mu_);
  return {registry, &registry->metric_locked(domain, name, Kind::Counter)};
}

void Registry::set(std::string_view name, double v, Domain domain) {
  std::lock_guard lock(mu_);
  metric_locked(domain, name, Kind::Gauge).value = v;
}

void Registry::set_max(std::string_view name, double v, Domain domain) {
  std::lock_guard lock(mu_);
  auto& m = metric_locked(domain, name, Kind::Gauge);
  if (v > m.value) m.value = v;
}

void Registry::observe(std::string_view name, double v, Domain domain) {
  std::lock_guard lock(mu_);
  metric_locked(domain, name, Kind::Hist).hist.observe(v);
}

double Registry::value(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = det_.find(name);
  return it == det_.end() ? 0.0 : it->second.value;
}

double Registry::host_value(std::string_view name) const {
  std::lock_guard lock(mu_);
  const auto it = host_.find(name);
  return it == host_.end() ? 0.0 : it->second.value;
}

std::vector<std::pair<std::string, double>> Registry::scalar_values(
    Domain domain) const {
  std::lock_guard lock(mu_);
  const auto& m = domain == Domain::Deterministic ? det_ : host_;
  std::vector<std::pair<std::string, double>> out;
  out.reserve(m.size());
  for (const auto& [name, metric] : m)
    if (metric.kind != Kind::Hist) out.emplace_back(name, metric.value);
  return out;
}

std::string Registry::to_json(bool include_host) const {
  std::lock_guard lock(mu_);
  std::ostringstream os;
  const auto emit_domain =
      [&os](const std::map<std::string, Metric, std::less<>>& metrics) {
        os << "{";
        bool first = true;
        for (const auto& [name, m] : metrics) {
          if (!first) os << ",";
          first = false;
          os << "\n    \"" << json::escape(name) << "\": {";
          switch (m.kind) {
            case Kind::Counter:
              os << "\"kind\": \"counter\", \"value\": "
                 << json::format_number(m.value);
              break;
            case Kind::Gauge:
              os << "\"kind\": \"gauge\", \"value\": "
                 << json::format_number(m.value);
              break;
            case Kind::Hist: {
              const Histogram& h = m.hist;
              os << "\"kind\": \"histogram\", \"count\": " << h.count
                 << ", \"sum\": " << json::format_number(h.sum)
                 << ", \"min\": " << json::format_number(h.min)
                 << ", \"max\": " << json::format_number(h.max)
                 << ", \"buckets\": [";
              for (int b = 0; b < Histogram::kBuckets; ++b) {
                if (b > 0) os << ", ";
                os << h.buckets[static_cast<std::size_t>(b)];
              }
              os << "]";
              break;
            }
          }
          os << "}";
        }
        if (!first) os << "\n  ";
        os << "}";
      };

  os << "{\n";
  os << "  \"schema\": \"fgpred-metrics-v1\",\n";
  os << "  \"deterministic\": ";
  emit_domain(det_);
  if (include_host) {
    os << ",\n  \"host\": ";
    emit_domain(host_);
  }
  os << "\n}\n";
  return os.str();
}

void Registry::clear() {
  std::lock_guard lock(mu_);
  det_.clear();
  host_.clear();
}

}  // namespace fgp::obs
