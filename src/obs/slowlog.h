// slowlog.h — the service's structured slow-query log.
//
// Quantiles say *that* a tail exists; the slow-query log says *which*
// queries are in it. SelectionService::query_batch appends one entry per
// query whose wall-clock latency crosses the configured threshold: the
// query identity, the latency, how many candidates were enumerated, the
// chosen replica (or the error), and the topology version the batch
// ranked against — enough to replay the query later against the same
// catalog state.
//
// The log is a fixed-capacity ring: the newest `capacity` slow queries
// survive, `seen()` counts every threshold crossing ever. Appends are
// mutex-guarded but happen only at batch end for queries already over
// the threshold — the hot path never touches the lock. Latencies are
// wall-clock, so the exported JSON (schema "fgpred-slowlog-v1") is
// Host-domain data (DESIGN.md §17): never part of a byte-identity
// comparison.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace fgp::obs {

struct SlowQueryEntry {
  std::string app;
  std::string dataset;
  double latency_s = 0.0;
  std::uint64_t candidates_considered = 0;
  /// Best candidate of a successful query ("repository/compute_site/
  /// compute_nodes"); empty when the query failed.
  std::string chosen;
  /// The query's error, empty on success.
  std::string error;
  /// Topology version the batch's snapshots were captured at.
  std::uint64_t topology_version = 0;
};

class SlowQueryLog {
 public:
  /// `threshold_s`: latencies strictly greater are logged. `capacity`
  /// bounds the ring (>= 1; clamped).
  explicit SlowQueryLog(double threshold_s, std::size_t capacity = 128);

  double threshold_seconds() const { return threshold_s_; }
  std::size_t capacity() const { return capacity_; }

  /// Appends `entry` if its latency_s exceeds the threshold (overwriting
  /// the oldest entry when full). Thread-safe; cold path only.
  void maybe_record(SlowQueryEntry entry);

  /// Total threshold crossings ever (>= entries().size()).
  std::uint64_t seen() const;

  /// The surviving entries, oldest first.
  std::vector<SlowQueryEntry> entries() const;

  void clear();

  /// Canonical JSON (schema "fgpred-slowlog-v1"), entries oldest first.
  std::string to_json() const;

 private:
  const double threshold_s_;
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;
  std::size_t next_ = 0;  ///< ring slot the next entry overwrites
  std::uint64_t seen_ = 0;
};

}  // namespace fgp::obs
