// pool.h — observability adapters for util::ThreadPool.
//
// The pool lives below obs in the dependency chain (fgp_obs links
// fgp_util), so it exposes only a generic observer hook and a PoolStats
// snapshot; this header turns those into obs artifacts. Everything here
// is Host-domain by construction: which thread claims a block and how
// long a parallel_for takes in wall-clock are scheduling accidents, so
// none of it may leak into deterministic traces or metrics.
#pragma once

#include "util/thread_pool.h"

namespace fgp::obs {

class Registry;
class TraceRecorder;

/// Installs a task observer that records one host wall-clock span per
/// parallel_for on the recorder's "pool" track. No-op recording unless
/// `trace->host_enabled()`; pass nullptr to detach the observer. Install
/// before sharing the pool across threads (see ThreadPool::set_task_observer).
void attach_pool_tracing(util::ThreadPool& pool, TraceRecorder* trace);

/// Copies a PoolStats snapshot into Host-domain gauges:
///   <prefix>.parallel_for_calls / .blocks_total / .blocks_by_helpers /
///   .tasks_submitted
void record_pool_stats(const util::PoolStats& stats, Registry& metrics,
                       const std::string& prefix = "pool");

}  // namespace fgp::obs
