#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <sstream>
#include <tuple>

#include "obs/json.h"
#include "util/check.h"

namespace fgp::obs {

namespace {

long long to_ns(double seconds) {
  return std::llround(seconds * 1e9);
}

/// Chrome "ts" is in microseconds; we carry nanosecond integers and print
/// them as fixed-point microseconds, which is deterministic for identical
/// input bits (no double formatting in the hot path of comparisons).
std::string ns_to_us(long long ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%lld.%03lld", ns / 1000, ns % 1000);
  return buf;
}

}  // namespace

void TraceRecorder::push(Event e) {
  std::lock_guard lock(mu_);
  events_.push_back(std::move(e));
}

void TraceRecorder::span(std::string_view category, std::string_view name,
                         int node, int pass, double begin_s, double end_s) {
  FGP_CHECK_MSG(end_s >= begin_s && begin_s >= 0.0,
                "trace span '" << std::string(name)
                               << "' has out-of-order timestamps");
  Event e;
  e.kind = Kind::Span;
  e.category = std::string(category);
  e.name = std::string(name);
  e.node = node;
  e.pass = pass;
  e.begin_ns = to_ns(begin_s);
  e.end_ns = to_ns(end_s);
  push(std::move(e));
}

void TraceRecorder::detail(std::string_view category, std::string_view name,
                           int node, int pass, double begin_s, double end_s) {
  FGP_CHECK_MSG(end_s >= begin_s && begin_s >= 0.0,
                "trace detail '" << std::string(name)
                                 << "' has out-of-order timestamps");
  Event e;
  e.kind = Kind::Detail;
  e.category = std::string(category);
  e.name = std::string(name);
  e.node = node;
  e.pass = pass;
  e.begin_ns = to_ns(begin_s);
  e.end_ns = to_ns(end_s);
  push(std::move(e));
}

void TraceRecorder::counter(std::string_view category, std::string_view name,
                            int node, double time_s, double value) {
  FGP_CHECK_MSG(time_s >= 0.0, "trace counter '" << std::string(name)
                                                 << "' has a negative time");
  FGP_CHECK_MSG(std::isfinite(value), "trace counter '" << std::string(name)
                                                        << "' is not finite");
  Event e;
  e.kind = Kind::Counter;
  e.category = std::string(category);
  e.name = std::string(name);
  e.node = node;
  e.pass = -1;
  e.begin_ns = to_ns(time_s);
  e.end_ns = e.begin_ns;
  e.value = value;
  push(std::move(e));
}

void TraceRecorder::host_span(std::string_view category, std::string_view name,
                              double begin_s, double end_s) {
  if (!host_enabled_) return;
  Event e;
  e.kind = Kind::Host;
  e.category = std::string(category);
  e.name = std::string(name);
  e.node = kJobNode;
  e.pass = -1;
  e.begin_ns = to_ns(std::max(0.0, begin_s));
  e.end_ns = to_ns(std::max(begin_s, end_s));
  push(std::move(e));
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard lock(mu_);
  return events_.size();
}

void TraceRecorder::clear() {
  std::lock_guard lock(mu_);
  events_.clear();
}

std::string TraceRecorder::to_chrome_json(bool include_host) const {
  // Snapshot under the lock, then export without it.
  std::vector<Event> events;
  {
    std::lock_guard lock(mu_);
    events = events_;
  }
  if (!include_host) {
    events.erase(std::remove_if(events.begin(), events.end(),
                                [](const Event& e) {
                                  return e.kind == Kind::Host;
                                }),
                 events.end());
  }

  // --- Track assignment -------------------------------------------------
  // pid: 0 = job-level virtual spans, node+1 = per-node virtual spans,
  // kHostPid = host wall-clock. tid: index of the track name in the sorted
  // set of names used on that pid — a pure function of the event set, so
  // the export is canonical.
  struct TrackKey {
    int pid;
    std::string name;
    bool operator<(const TrackKey& o) const {
      return std::tie(pid, name) < std::tie(o.pid, o.name);
    }
  };
  const auto track_of = [](const Event& e) {
    TrackKey k;
    if (e.kind == Kind::Host) {
      k.pid = kHostPid;
      k.name = e.category;
    } else {
      k.pid = e.node == kJobNode ? 0 : e.node + 1;
      k.name = e.kind == Kind::Detail     ? e.category + "/detail"
               : e.kind == Kind::Counter  ? e.category + "/counter"
                                          : e.category;
    }
    return k;
  };

  std::map<TrackKey, std::vector<const Event*>> tracks;
  for (const Event& e : events) tracks[track_of(e)].push_back(&e);

  std::map<int, std::map<std::string, int>> tids;  // pid -> name -> tid
  for (const auto& [key, unused] : tracks) {
    auto& names = tids[key.pid];
    (void)unused;
    if (names.find(key.name) == names.end()) {
      const int tid = static_cast<int>(names.size());
      names.emplace(key.name, tid);
    }
  }

  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"fgpred-trace-v1\",\n";
  os << "  \"displayTimeUnit\": \"ms\",\n";
  os << "  \"traceEvents\": [";
  bool first = true;
  const auto emit = [&os, &first](const std::string& line) {
    os << (first ? "\n    " : ",\n    ") << line;
    first = false;
  };

  // Metadata: process and thread names, in (pid, tid) order.
  for (const auto& [pid, names] : tids) {
    std::string pname;
    if (pid == 0)
      pname = "job (virtual time)";
    else if (pid == kHostPid)
      pname = "host (wall clock)";
    else
      pname = "node " + std::to_string(pid - 1) + " (virtual time)";
    emit("{\"ph\": \"M\", \"pid\": " + std::to_string(pid) +
         ", \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"" +
         json::escape(pname) + "\"}}");
    std::vector<std::pair<int, std::string>> by_tid;
    for (const auto& [name, tid] : names) by_tid.emplace_back(tid, name);
    std::sort(by_tid.begin(), by_tid.end());
    for (const auto& [tid, name] : by_tid)
      emit("{\"ph\": \"M\", \"pid\": " + std::to_string(pid) + ", \"tid\": " +
           std::to_string(tid) + ", \"name\": \"thread_name\", \"args\": "
           "{\"name\": \"" + json::escape(name) + "\"}}");
  }

  const auto args_of = [](const Event& e) {
    std::string a = "{";
    if (e.pass >= 0) a += "\"pass\": " + std::to_string(e.pass);
    a += "}";
    return a;
  };

  // Span events, one track at a time (tracks iterate in canonical order).
  for (auto& [key, list] : tracks) {
    const int pid = key.pid;
    const int tid = tids[pid][key.name];
    const std::string head = "\"pid\": " + std::to_string(pid) +
                             ", \"tid\": " + std::to_string(tid);

    const bool counter_events =
        !list.empty() && list.front()->kind == Kind::Counter;
    const bool complete_events = !counter_events && !list.empty() &&
                                 list.front()->kind != Kind::Span;
    // Canonical in-track order: outer spans before inner at equal begins.
    std::sort(list.begin(), list.end(), [](const Event* a, const Event* b) {
      return std::tie(a->begin_ns, b->end_ns, a->name, a->pass) <
             std::tie(b->begin_ns, a->end_ns, b->name, b->pass);
    });

    long long prev_ts = -1;
    const auto bump = [&prev_ts](long long ts) {
      // Strictly increasing per-track timestamps: deterministic 1 ns
      // tie-breaks (fgptrace --validate enforces the invariant).
      const long long out = ts <= prev_ts ? prev_ts + 1 : ts;
      prev_ts = out;
      return out;
    };

    if (counter_events) {
      // Counter samples: Chrome "C" events; the args key names the series.
      for (const Event* e : list) {
        emit("{\"ph\": \"C\", " + head + ", \"ts\": " +
             ns_to_us(bump(e->begin_ns)) + ", \"name\": \"" +
             json::escape(e->name) + "\", \"cat\": \"" +
             json::escape(e->category) + "\", \"args\": {\"" +
             json::escape(e->name) + "\": " + json::format_number(e->value) +
             "}}");
      }
      continue;
    }

    if (complete_events) {
      // Detail/host spans: Chrome "X" complete events.
      for (const Event* e : list) {
        const long long b = bump(e->begin_ns);
        const long long dur = std::max(0LL, e->end_ns - e->begin_ns);
        emit("{\"ph\": \"X\", " + head + ", \"ts\": " + ns_to_us(b) +
             ", \"dur\": " + ns_to_us(dur) + ", \"name\": \"" +
             json::escape(e->name) + "\", \"cat\": \"" +
             json::escape(e->category) + "\", \"args\": " + args_of(*e) + "}");
      }
      continue;
    }

    // Nested spans: balanced B/E pairs via an explicit open-span stack.
    std::vector<const Event*> stack;
    const auto emit_end = [&](const Event* e) {
      emit("{\"ph\": \"E\", " + head + ", \"ts\": " + ns_to_us(bump(e->end_ns)) +
           "}");
    };
    for (const Event* e : list) {
      while (!stack.empty() && stack.back()->end_ns <= e->begin_ns) {
        emit_end(stack.back());
        stack.pop_back();
      }
      emit("{\"ph\": \"B\", " + head + ", \"ts\": " + ns_to_us(bump(e->begin_ns)) +
           ", \"name\": \"" + json::escape(e->name) + "\", \"cat\": \"" +
           json::escape(e->category) + "\", \"args\": " + args_of(*e) + "}");
      stack.push_back(e);
    }
    while (!stack.empty()) {
      emit_end(stack.back());
      stack.pop_back();
    }
  }

  os << "\n  ]\n}\n";
  return os.str();
}

}  // namespace fgp::obs
