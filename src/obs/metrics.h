// metrics.h — the named-metric registry of the observability layer.
//
// Counters, gauges and histograms live in one of two domains:
//
//   Deterministic  values derived purely from virtual-cluster state
//                  (bytes over a WAN pipe, chunks served per cache tier,
//                  per-phase virtual-time histograms). The determinism
//                  contract (DESIGN.md §12): deterministic-domain doubles
//                  must be recorded from deterministic program points in a
//                  deterministic order, OR be integral increments (integer
//                  sums are exact and order-independent below 2^53), so a
//                  snapshot is byte-identical across host pool sizes.
//   Host           wall-clock and host-machine facts (pool steal counts,
//                  IO wall time). Segregated in the snapshot so tooling
//                  can strip them before byte comparison.
//
// The registry is thread-safe; recording into it is cheap but not free, so
// hot paths hold a `Registry*` that defaults to nullptr (recording off).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fgp::obs {

enum class Domain { Deterministic, Host };

/// Log10-bucketed histogram: decade boundaries from 1e-9 to 1e4 seconds
/// (or whatever unit the caller observes), plus an overflow bucket.
struct Histogram {
  static constexpr int kBuckets = 15;  ///< le 1e-9 .. le 1e4, then +inf
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void observe(double v);
  /// Upper bound of bucket `i` (the last bucket is +inf).
  static double upper_bound(int i);
};

class Registry {
 private:
  struct Metric;  // defined below; named early for the Counter handle

 public:
  /// Counter: accumulates. Concurrent deterministic-domain use is only
  /// byte-stable for integral increments (see header comment).
  void add(std::string_view name, double v,
           Domain domain = Domain::Deterministic);

  /// A pre-resolved counter: the name -> metric map lookup (O(log n) plus
  /// a string materialization) happens once, in counter(); every add()
  /// through the handle is then a lock + one double accumulation. Hot
  /// loops that bump the same counter per simulated node — the WAN pipe
  /// accounting at 1,000+ nodes — hold handles instead of names. The
  /// accumulation order through a handle is exactly the order of the
  /// add() calls, so deterministic-domain byte-identity is unchanged.
  /// A handle stays valid until clear() (std::map nodes are stable);
  /// a default-constructed (or null-registry) handle drops every add.
  class Counter {
   public:
    Counter() = default;
    void add(double v) const;
    bool live() const { return metric_ != nullptr; }

   private:
    friend class Registry;
    Counter(Registry* owner, Metric* metric)
        : owner_(owner), metric_(metric) {}
    Registry* owner_ = nullptr;
    Metric* metric_ = nullptr;
  };

  /// Resolves (creating if absent) a counter handle. Null-safe: a null
  /// `registry` yields an inert handle, so call sites keep the
  /// "observability off is one branch" property.
  static Counter counter(Registry* registry, std::string_view name,
                         Domain domain = Domain::Deterministic);

  /// Gauge: last write wins.
  void set(std::string_view name, double v,
           Domain domain = Domain::Deterministic);

  /// Gauge keeping the maximum of all writes.
  void set_max(std::string_view name, double v,
               Domain domain = Domain::Deterministic);

  /// Histogram observation.
  void observe(std::string_view name, double v,
               Domain domain = Domain::Deterministic);

  /// Reads a counter/gauge value back (0 when absent). Deterministic
  /// domain only — meant for tests and report glue, not hot paths.
  double value(std::string_view name) const;

  /// Same read-back for the host domain (0 when absent).
  double host_value(std::string_view name) const;

  /// All counter/gauge values of one domain as (name, value) pairs,
  /// sorted by name (histograms are skipped) — the SnapshotRing feed.
  std::vector<std::pair<std::string, double>> scalar_values(
      Domain domain) const;

  /// Snapshot as canonical JSON (schema "fgpred-metrics-v1"): metrics
  /// sorted by name within each domain; `include_host` = false drops the
  /// host section entirely (byte-comparison mode).
  std::string to_json(bool include_host = true) const;

  void clear();

 private:
  enum class Kind { Counter, Gauge, Hist };
  struct Metric {
    Kind kind = Kind::Counter;
    double value = 0.0;
    Histogram hist;
  };

  Metric& metric_locked(Domain domain, std::string_view name, Kind kind);

  mutable std::mutex mu_;
  std::map<std::string, Metric, std::less<>> det_;
  std::map<std::string, Metric, std::less<>> host_;
};

}  // namespace fgp::obs
