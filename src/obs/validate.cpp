#include "obs/validate.h"

#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/metrics.h"

namespace fgp::obs {

namespace {

void err(ValidationResult& r, const std::string& what) {
  if (r.errors.size() < 64) r.errors.push_back(what);
}

bool finite_number(const json::Value* v) {
  return v != nullptr && v->is_number() && std::isfinite(v->as_number());
}

void check_trace_event(ValidationResult& r, const json::Value& ev,
                       std::size_t index) {
  const std::string at = "traceEvents[" + std::to_string(index) + "]";
  if (!ev.is_object()) {
    err(r, at + ": event is not an object");
    return;
  }
  const json::Value* ph = ev.find("ph");
  if (ph == nullptr || !ph->is_string() || ph->as_string().size() != 1) {
    err(r, at + ": missing or malformed \"ph\"");
    return;
  }
  const char kind = ph->as_string()[0];
  if (kind != 'M' && kind != 'B' && kind != 'E' && kind != 'X') {
    err(r, at + ": unsupported phase '" + ph->as_string() + "'");
    return;
  }
  if (!finite_number(ev.find("pid")) || !finite_number(ev.find("tid"))) {
    err(r, at + ": missing pid/tid");
    return;
  }
  if (kind == 'M') return;  // metadata carries no timestamp contract
  const json::Value* ts = ev.find("ts");
  if (!finite_number(ts) || ts->as_number() < 0.0) {
    err(r, at + ": missing or negative \"ts\"");
    return;
  }
  if (kind == 'X') {
    const json::Value* dur = ev.find("dur");
    if (!finite_number(dur) || dur->as_number() < 0.0)
      err(r, at + ": X event without non-negative \"dur\"");
  }
  if (kind == 'B' || kind == 'X') {
    const json::Value* name = ev.find("name");
    if (name == nullptr || !name->is_string())
      err(r, at + ": " + kind + std::string(" event without a name"));
  }
}

}  // namespace

const char* to_string(ReportKind kind) {
  switch (kind) {
    case ReportKind::Trace: return "trace";
    case ReportKind::Metrics: return "metrics";
    case ReportKind::Residuals: return "residuals";
    case ReportKind::Unknown: break;
  }
  return "unknown";
}

ValidationResult validate_trace(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Trace;
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    err(r, "document has no \"traceEvents\" array");
    return r;
  }

  // Per-event shape first.
  const auto& list = events->as_array();
  for (std::size_t i = 0; i < list.size(); ++i)
    check_trace_event(r, list[i], i);
  if (!r.errors.empty()) return r;

  // Per-track contracts: strictly increasing timestamps over non-metadata
  // events, and balanced B/E with stack discipline.
  struct TrackState {
    double last_ts = -1.0;
    long long open = 0;
  };
  std::map<std::pair<long long, long long>, TrackState> tracks;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const json::Value& ev = list[i];
    const char kind = ev.find("ph")->as_string()[0];
    if (kind == 'M') continue;
    const auto key = std::make_pair(
        static_cast<long long>(ev.find("pid")->as_number()),
        static_cast<long long>(ev.find("tid")->as_number()));
    TrackState& t = tracks[key];
    const double ts = ev.find("ts")->as_number();
    if (ts <= t.last_ts)
      err(r, "traceEvents[" + std::to_string(i) +
                 "]: per-track timestamps not strictly increasing (pid " +
                 std::to_string(key.first) + " tid " +
                 std::to_string(key.second) + ")");
    t.last_ts = ts;
    if (kind == 'B') {
      t.open += 1;
    } else if (kind == 'E') {
      if (t.open == 0)
        err(r, "traceEvents[" + std::to_string(i) +
                   "]: E event without a matching open B");
      else
        t.open -= 1;
    }
  }
  for (const auto& [key, t] : tracks)
    if (t.open != 0)
      err(r, "track pid " + std::to_string(key.first) + " tid " +
                 std::to_string(key.second) + " ends with " +
                 std::to_string(t.open) + " unbalanced B event(s)");
  return r;
}

ValidationResult validate_metrics(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Metrics;
  const auto check_domain = [&r](const json::Value* domain,
                                 const std::string& label) {
    if (domain == nullptr) return;  // "host" may be stripped
    if (!domain->is_object()) {
      err(r, "\"" + label + "\" is not an object");
      return;
    }
    for (const auto& [name, m] : domain->as_object()) {
      const std::string at = label + "." + name;
      if (!m.is_object()) {
        err(r, at + ": metric is not an object");
        continue;
      }
      const json::Value* kind = m.find("kind");
      if (kind == nullptr || !kind->is_string()) {
        err(r, at + ": missing \"kind\"");
        continue;
      }
      const std::string& k = kind->as_string();
      if (k == "counter" || k == "gauge") {
        if (!finite_number(m.find("value")))
          err(r, at + ": " + k + " without a finite \"value\"");
      } else if (k == "histogram") {
        const json::Value* count = m.find("count");
        const json::Value* buckets = m.find("buckets");
        if (!finite_number(count) || !finite_number(m.find("sum")) ||
            !finite_number(m.find("min")) || !finite_number(m.find("max"))) {
          err(r, at + ": histogram missing count/sum/min/max");
          continue;
        }
        if (buckets == nullptr || !buckets->is_array() ||
            buckets->as_array().size() !=
                static_cast<std::size_t>(Histogram::kBuckets)) {
          err(r, at + ": histogram without its " +
                     std::to_string(Histogram::kBuckets) + " buckets");
          continue;
        }
        double total = 0.0;
        bool numeric = true;
        for (const auto& b : buckets->as_array()) {
          if (!b.is_number() || b.as_number() < 0.0) {
            numeric = false;
            break;
          }
          total += b.as_number();
        }
        if (!numeric)
          err(r, at + ": histogram bucket is not a non-negative number");
        else if (total != count->as_number())
          err(r, at + ": histogram buckets do not sum to \"count\"");
      } else {
        err(r, at + ": unknown metric kind '" + k + "'");
      }
    }
  };
  if (doc.find("deterministic") == nullptr)
    err(r, "document has no \"deterministic\" section");
  check_domain(doc.find("deterministic"), "deterministic");
  check_domain(doc.find("host"), "host");
  return r;
}

ValidationResult validate_residuals(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Residuals;
  const json::Value* points = doc.find("points");
  if (points == nullptr || !points->is_array()) {
    err(r, "document has no \"points\" array");
    return r;
  }
  static const char* kComponents[] = {"disk", "network", "compute_local",
                                      "ro_comm", "global_red"};
  const auto& list = points->as_array();
  for (std::size_t i = 0; i < list.size(); ++i) {
    const std::string at = "points[" + std::to_string(i) + "]";
    const json::Value& p = list[i];
    if (!p.is_object()) {
      err(r, at + ": point is not an object");
      continue;
    }
    const json::Value* label = p.find("label");
    if (label == nullptr || !label->is_string())
      err(r, at + ": missing \"label\"");
    for (const char* section : {"predicted", "observed", "residual"}) {
      const json::Value* c = p.find(section);
      if (c == nullptr || !c->is_object()) {
        err(r, at + ": missing \"" + std::string(section) + "\" components");
        continue;
      }
      for (const char* comp : kComponents)
        if (!finite_number(c->find(comp)))
          err(r, at + "." + section + ": component \"" + comp +
                     "\" missing or not finite");
    }
    if (!finite_number(p.find("rel_error_total")))
      err(r, at + ": missing \"rel_error_total\"");
  }
  return r;
}

ValidationResult validate_report(const json::Value& doc) {
  const json::Value* schema = doc.is_object() ? doc.find("schema") : nullptr;
  if (schema == nullptr || !schema->is_string()) {
    ValidationResult r;
    err(r, "document has no \"schema\" string");
    return r;
  }
  const std::string& s = schema->as_string();
  if (s == "fgpred-trace-v1") return validate_trace(doc);
  if (s == "fgpred-metrics-v1") return validate_metrics(doc);
  if (s == "fgpred-residuals-v1") return validate_residuals(doc);
  ValidationResult r;
  err(r, "unknown schema '" + s + "'");
  return r;
}

ValidationResult validate_report_text(std::string_view text) {
  return validate_report(json::parse(text));
}

}  // namespace fgp::obs
