#include "obs/validate.h"

#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "obs/metrics.h"

namespace fgp::obs {

namespace {

void err(ValidationResult& r, const std::string& what) {
  if (r.errors.size() < 64) r.errors.push_back(what);
}

bool finite_number(const json::Value* v) {
  return v != nullptr && v->is_number() && std::isfinite(v->as_number());
}

void check_trace_event(ValidationResult& r, const json::Value& ev,
                       std::size_t index) {
  const std::string at = "traceEvents[" + std::to_string(index) + "]";
  if (!ev.is_object()) {
    err(r, at + ": event is not an object");
    return;
  }
  const json::Value* ph = ev.find("ph");
  if (ph == nullptr || !ph->is_string() || ph->as_string().size() != 1) {
    err(r, at + ": missing or malformed \"ph\"");
    return;
  }
  const char kind = ph->as_string()[0];
  if (kind != 'M' && kind != 'B' && kind != 'E' && kind != 'X' &&
      kind != 'C') {
    err(r, at + ": unsupported phase '" + ph->as_string() + "'");
    return;
  }
  if (!finite_number(ev.find("pid")) || !finite_number(ev.find("tid"))) {
    err(r, at + ": missing pid/tid");
    return;
  }
  if (kind == 'M') return;  // metadata carries no timestamp contract
  const json::Value* ts = ev.find("ts");
  if (!finite_number(ts) || ts->as_number() < 0.0) {
    err(r, at + ": missing or negative \"ts\"");
    return;
  }
  if (kind == 'X') {
    const json::Value* dur = ev.find("dur");
    if (!finite_number(dur) || dur->as_number() < 0.0)
      err(r, at + ": X event without non-negative \"dur\"");
  }
  if (kind == 'B' || kind == 'X' || kind == 'C') {
    const json::Value* name = ev.find("name");
    if (name == nullptr || !name->is_string())
      err(r, at + ": " + kind + std::string(" event without a name"));
  }
  if (kind == 'C') {
    // Counter samples carry their series values in args; every value must
    // be a finite number or the viewer's running series breaks.
    const json::Value* args = ev.find("args");
    if (args == nullptr || !args->is_object() || args->as_object().empty()) {
      err(r, at + ": C event without a non-empty \"args\" object");
    } else {
      for (const auto& [key, value] : args->as_object()) {
        if (!value.is_number() || !std::isfinite(value.as_number()))
          err(r, at + ": C event series \"" + key + "\" is not finite");
      }
    }
  }
}

}  // namespace

const char* to_string(ReportKind kind) {
  switch (kind) {
    case ReportKind::Trace: return "trace";
    case ReportKind::Metrics: return "metrics";
    case ReportKind::Residuals: return "residuals";
    case ReportKind::Slowlog: return "slowlog";
    case ReportKind::Drift: return "drift";
    case ReportKind::Snapshots: return "snapshots";
    case ReportKind::Unknown: break;
  }
  return "unknown";
}

ValidationResult validate_trace(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Trace;
  const json::Value* events = doc.find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    err(r, "document has no \"traceEvents\" array");
    return r;
  }

  // Per-event shape first.
  const auto& list = events->as_array();
  for (std::size_t i = 0; i < list.size(); ++i)
    check_trace_event(r, list[i], i);
  if (!r.errors.empty()) return r;

  // Per-track contracts: strictly increasing timestamps over non-metadata
  // events, and balanced B/E with stack discipline.
  struct TrackState {
    double last_ts = -1.0;
    long long open = 0;
  };
  std::map<std::pair<long long, long long>, TrackState> tracks;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const json::Value& ev = list[i];
    const char kind = ev.find("ph")->as_string()[0];
    if (kind == 'M') continue;
    const auto key = std::make_pair(
        static_cast<long long>(ev.find("pid")->as_number()),
        static_cast<long long>(ev.find("tid")->as_number()));
    TrackState& t = tracks[key];
    const double ts = ev.find("ts")->as_number();
    if (ts <= t.last_ts)
      err(r, "traceEvents[" + std::to_string(i) +
                 "]: per-track timestamps not strictly increasing (pid " +
                 std::to_string(key.first) + " tid " +
                 std::to_string(key.second) + ")");
    t.last_ts = ts;
    if (kind == 'B') {
      t.open += 1;
    } else if (kind == 'E') {
      if (t.open == 0)
        err(r, "traceEvents[" + std::to_string(i) +
                   "]: E event without a matching open B");
      else
        t.open -= 1;
    }
  }
  for (const auto& [key, t] : tracks)
    if (t.open != 0)
      err(r, "track pid " + std::to_string(key.first) + " tid " +
                 std::to_string(key.second) + " ends with " +
                 std::to_string(t.open) + " unbalanced B event(s)");
  return r;
}

ValidationResult validate_metrics(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Metrics;
  const auto check_domain = [&r](const json::Value* domain,
                                 const std::string& label) {
    if (domain == nullptr) return;  // "host" may be stripped
    if (!domain->is_object()) {
      err(r, "\"" + label + "\" is not an object");
      return;
    }
    for (const auto& [name, m] : domain->as_object()) {
      const std::string at = label + "." + name;
      if (!m.is_object()) {
        err(r, at + ": metric is not an object");
        continue;
      }
      const json::Value* kind = m.find("kind");
      if (kind == nullptr || !kind->is_string()) {
        err(r, at + ": missing \"kind\"");
        continue;
      }
      const std::string& k = kind->as_string();
      if (k == "counter" || k == "gauge") {
        if (!finite_number(m.find("value")))
          err(r, at + ": " + k + " without a finite \"value\"");
      } else if (k == "histogram") {
        const json::Value* count = m.find("count");
        const json::Value* buckets = m.find("buckets");
        if (!finite_number(count) || !finite_number(m.find("sum")) ||
            !finite_number(m.find("min")) || !finite_number(m.find("max"))) {
          err(r, at + ": histogram missing count/sum/min/max");
          continue;
        }
        if (buckets == nullptr || !buckets->is_array() ||
            buckets->as_array().size() !=
                static_cast<std::size_t>(Histogram::kBuckets)) {
          err(r, at + ": histogram without its " +
                     std::to_string(Histogram::kBuckets) + " buckets");
          continue;
        }
        double total = 0.0;
        bool numeric = true;
        for (const auto& b : buckets->as_array()) {
          if (!b.is_number() || b.as_number() < 0.0) {
            numeric = false;
            break;
          }
          total += b.as_number();
        }
        if (!numeric)
          err(r, at + ": histogram bucket is not a non-negative number");
        else if (total != count->as_number())
          err(r, at + ": histogram buckets do not sum to \"count\"");
      } else {
        err(r, at + ": unknown metric kind '" + k + "'");
      }
    }
  };
  if (doc.find("deterministic") == nullptr)
    err(r, "document has no \"deterministic\" section");
  check_domain(doc.find("deterministic"), "deterministic");
  check_domain(doc.find("host"), "host");
  return r;
}

ValidationResult validate_residuals(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Residuals;
  const json::Value* points = doc.find("points");
  if (points == nullptr || !points->is_array()) {
    err(r, "document has no \"points\" array");
    return r;
  }
  static const char* kComponents[] = {"disk", "network", "compute_local",
                                      "ro_comm", "global_red"};
  const auto& list = points->as_array();
  for (std::size_t i = 0; i < list.size(); ++i) {
    const std::string at = "points[" + std::to_string(i) + "]";
    const json::Value& p = list[i];
    if (!p.is_object()) {
      err(r, at + ": point is not an object");
      continue;
    }
    const json::Value* label = p.find("label");
    if (label == nullptr || !label->is_string())
      err(r, at + ": missing \"label\"");
    for (const char* section : {"predicted", "observed", "residual"}) {
      const json::Value* c = p.find(section);
      if (c == nullptr || !c->is_object()) {
        err(r, at + ": missing \"" + std::string(section) + "\" components");
        continue;
      }
      for (const char* comp : kComponents)
        if (!finite_number(c->find(comp)))
          err(r, at + "." + section + ": component \"" + comp +
                     "\" missing or not finite");
    }
    if (!finite_number(p.find("rel_error_total")))
      err(r, at + ": missing \"rel_error_total\"");
  }
  return r;
}

ValidationResult validate_slowlog(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Slowlog;
  const json::Value* threshold = doc.find("threshold_s");
  if (!finite_number(threshold) || threshold->as_number() < 0.0)
    err(r, "missing or negative \"threshold_s\"");
  const json::Value* capacity = doc.find("capacity");
  if (!finite_number(capacity) || capacity->as_number() < 1.0)
    err(r, "missing \"capacity\" (must be >= 1)");
  const json::Value* seen = doc.find("seen");
  if (!finite_number(seen) || seen->as_number() < 0.0)
    err(r, "missing or negative \"seen\"");
  const json::Value* entries = doc.find("entries");
  if (entries == nullptr || !entries->is_array()) {
    err(r, "document has no \"entries\" array");
    return r;
  }
  const auto& list = entries->as_array();
  if (finite_number(capacity) &&
      static_cast<double>(list.size()) > capacity->as_number())
    err(r, "more entries than \"capacity\"");
  if (finite_number(seen) && static_cast<double>(list.size()) >
                                 seen->as_number())
    err(r, "more entries than \"seen\" threshold crossings");
  for (std::size_t i = 0; i < list.size(); ++i) {
    const std::string at = "entries[" + std::to_string(i) + "]";
    const json::Value& e = list[i];
    if (!e.is_object()) {
      err(r, at + ": entry is not an object");
      continue;
    }
    for (const char* field : {"app", "dataset", "chosen", "error"}) {
      const json::Value* v = e.find(field);
      if (v == nullptr || !v->is_string())
        err(r, at + ": missing string \"" + std::string(field) + "\"");
    }
    const json::Value* latency = e.find("latency_s");
    if (!finite_number(latency) || latency->as_number() < 0.0)
      err(r, at + ": missing or negative \"latency_s\"");
    else if (finite_number(threshold) &&
             latency->as_number() <= threshold->as_number())
      err(r, at + ": \"latency_s\" does not exceed \"threshold_s\"");
    for (const char* field : {"candidates_considered", "topology_version"}) {
      const json::Value* v = e.find(field);
      if (!finite_number(v) || v->as_number() < 0.0)
        err(r, at + ": missing or negative \"" + std::string(field) + "\"");
    }
  }
  return r;
}

ValidationResult validate_drift(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Drift;
  const json::Value* alpha = doc.find("alpha");
  if (!finite_number(alpha) || !(alpha->as_number() > 0.0) ||
      alpha->as_number() > 1.0)
    err(r, "missing \"alpha\" (must be in (0, 1])");
  const json::Value* window = doc.find("window");
  if (!finite_number(window) || window->as_number() < 1.0)
    err(r, "missing \"window\" (must be >= 1)");
  const json::Value* band = doc.find("band");
  if (!finite_number(band) || band->as_number() < 0.0)
    err(r, "missing or negative \"band\"");
  const json::Value* points = doc.find("points");
  if (!finite_number(points) || points->as_number() < 0.0)
    err(r, "missing or negative \"points\"");
  const json::Value* drifting = doc.find("drifting");
  if (drifting == nullptr || !drifting->is_bool())
    err(r, "missing boolean \"drifting\"");
  const json::Value* components = doc.find("components");
  if (components == nullptr || !components->is_object()) {
    err(r, "document has no \"components\" object");
    return r;
  }
  static const char* kComponents[] = {"disk", "network", "compute_local",
                                      "ro_comm", "global_red"};
  bool any_component_drifting = false;
  for (const char* name : kComponents) {
    const std::string at = "components." + std::string(name);
    const json::Value* c = components->find(name);
    if (c == nullptr || !c->is_object()) {
      err(r, at + ": missing component object");
      continue;
    }
    for (const char* field : {"ewma", "window_mean", "window_var"})
      if (!finite_number(c->find(field)))
        err(r, at + ": \"" + std::string(field) + "\" missing or not finite");
    const json::Value* var = c->find("window_var");
    if (finite_number(var) && var->as_number() < 0.0)
      err(r, at + ": negative \"window_var\"");
    const json::Value* d = c->find("drifting");
    if (d == nullptr || !d->is_bool())
      err(r, at + ": missing boolean \"drifting\"");
    else if (d->as_bool())
      any_component_drifting = true;
  }
  if (drifting != nullptr && drifting->is_bool() &&
      drifting->as_bool() != any_component_drifting)
    err(r, "top-level \"drifting\" disagrees with the component flags");
  return r;
}

ValidationResult validate_snapshots(const json::Value& doc) {
  ValidationResult r;
  r.kind = ReportKind::Snapshots;
  const json::Value* capacity = doc.find("capacity");
  if (!finite_number(capacity) || capacity->as_number() < 1.0)
    err(r, "missing \"capacity\" (must be >= 1)");
  const json::Value* captured = doc.find("captured");
  if (!finite_number(captured) || captured->as_number() < 0.0)
    err(r, "missing or negative \"captured\"");
  const json::Value* snapshots = doc.find("snapshots");
  if (snapshots == nullptr || !snapshots->is_array()) {
    err(r, "document has no \"snapshots\" array");
    return r;
  }
  const auto& list = snapshots->as_array();
  if (finite_number(capacity) &&
      static_cast<double>(list.size()) > capacity->as_number())
    err(r, "more snapshots than \"capacity\"");
  const auto check_scalars = [&r](const json::Value* scalars,
                                  const std::string& at) {
    if (scalars == nullptr) return;
    if (!scalars->is_object()) {
      err(r, at + " is not an object");
      return;
    }
    for (const auto& [name, v] : scalars->as_object())
      if (!v.is_number() || !std::isfinite(v.as_number()))
        err(r, at + "." + name + ": value is not a finite number");
  };
  double last_seq = -1.0;
  for (std::size_t i = 0; i < list.size(); ++i) {
    const std::string at = "snapshots[" + std::to_string(i) + "]";
    const json::Value& s = list[i];
    if (!s.is_object()) {
      err(r, at + ": snapshot is not an object");
      continue;
    }
    const json::Value* seq = s.find("seq");
    if (!finite_number(seq) || seq->as_number() < 0.0) {
      err(r, at + ": missing or negative \"seq\"");
    } else {
      if (seq->as_number() <= last_seq)
        err(r, at + ": \"seq\" not strictly increasing");
      last_seq = seq->as_number();
    }
    const json::Value* host_seconds = s.find("host_seconds");
    if (host_seconds != nullptr &&  // stripped in byte-comparison mode
        (!finite_number(host_seconds) || host_seconds->as_number() < 0.0))
      err(r, at + ": \"host_seconds\" is not a non-negative number");
    if (s.find("deterministic") == nullptr)
      err(r, at + ": missing \"deterministic\" scalars");
    check_scalars(s.find("deterministic"), at + ".deterministic");
    check_scalars(s.find("host"), at + ".host");
  }
  return r;
}

ValidationResult validate_report(const json::Value& doc) {
  const json::Value* schema = doc.is_object() ? doc.find("schema") : nullptr;
  if (schema == nullptr || !schema->is_string()) {
    ValidationResult r;
    err(r, "document has no \"schema\" string");
    return r;
  }
  const std::string& s = schema->as_string();
  if (s == "fgpred-trace-v1") return validate_trace(doc);
  if (s == "fgpred-metrics-v1") return validate_metrics(doc);
  if (s == "fgpred-residuals-v1") return validate_residuals(doc);
  if (s == "fgpred-slowlog-v1") return validate_slowlog(doc);
  if (s == "fgpred-drift-v1") return validate_drift(doc);
  if (s == "fgpred-snapshots-v1") return validate_snapshots(doc);
  ValidationResult r;
  err(r, "unknown schema '" + s + "'");
  return r;
}

ValidationResult validate_report_text(std::string_view text) {
  return validate_report(json::parse(text));
}

}  // namespace fgp::obs
