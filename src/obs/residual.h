// residual.h — per-component prediction-residual reporting.
//
// The paper evaluates its model with a single scalar relative error per
// sweep point; localizing *where* a prediction diverges needs the
// component breakdown. A ResidualReport records, for every point of a
// sweep, the predicted and observed disk / network / compute_local /
// ro_comm / global_red times and exports them as canonical JSON
// (schema "fgpred-residuals-v1") for fgptrace / tools/bench_diff.
#pragma once

#include <string>
#include <vector>

namespace fgp::obs {

/// The five model components of one execution.
struct ComponentTimes {
  double disk = 0.0;
  double network = 0.0;
  double compute_local = 0.0;
  double ro_comm = 0.0;
  double global_red = 0.0;

  double total() const {
    return disk + network + compute_local + ro_comm + global_red;
  }
};

/// One sweep point: predicted vs observed components.
struct ResidualPoint {
  std::string label;  ///< e.g. "2-4" (data-compute) or a sweep coordinate
  ComponentTimes predicted;
  ComponentTimes observed;

  /// Signed residual per component (predicted - observed).
  ComponentTimes residual() const;
  /// |T_pred - T_exact| / T_exact over totals (the paper's E); 0 when the
  /// observed total is 0.
  double rel_error_total() const;
};

class ResidualReport {
 public:
  ResidualReport() = default;
  ResidualReport(std::string sweep, std::string model)
      : sweep_(std::move(sweep)), model_(std::move(model)) {}

  void set_sweep(std::string sweep) { sweep_ = std::move(sweep); }
  void set_model(std::string model) { model_ = std::move(model); }
  void add(ResidualPoint point) { points_.push_back(std::move(point)); }

  const std::string& sweep() const { return sweep_; }
  const std::string& model() const { return model_; }
  const std::vector<ResidualPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }

  /// Canonical JSON (schema "fgpred-residuals-v1"), deterministic for
  /// identical input bits.
  std::string to_json() const;

 private:
  std::string sweep_;
  std::string model_;
  std::vector<ResidualPoint> points_;
};

}  // namespace fgp::obs
