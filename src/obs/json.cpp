#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace fgp::obs::json {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw util::SerializationError("json: " + what + " at byte " +
                                 std::to_string(pos));
}

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing garbage after document");
    return v;
  }

 private:
  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  void expect(char c) {
    if (take() != c) fail(pos_ - 1, std::string("expected '") + c + "'");
  }

  void expect_word(std::string_view w) {
    if (text_.substr(pos_, w.size()) != w)
      fail(pos_, "invalid literal");
    pos_ += w.size();
  }

  Value parse_value(std::size_t depth) {
    if (depth > max_depth_) fail(pos_, "nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Value::make_string(parse_string());
      case 't':
        expect_word("true");
        return Value::make_bool(true);
      case 'f':
        expect_word("false");
        return Value::make_bool(false);
      case 'n':
        expect_word("null");
        return Value::make_null();
      default:
        return parse_number();
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    std::vector<std::pair<std::string, Value>> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char sep = take();
      if (sep == '}') break;
      if (sep != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
    return Value::make_object(std::move(members));
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    for (;;) {
      items.push_back(parse_value(depth + 1));
      skip_ws();
      const char sep = take();
      if (sep == ']') break;
      if (sep != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
    return Value::make_array(std::move(items));
  }

  std::string parse_string() {
    if (peek() != '"') fail(pos_, "expected string");
    ++pos_;
    std::string out;
    for (;;) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail(pos_ - 1, "unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9')
              code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code += static_cast<unsigned>(h - 'A' + 10);
            else
              fail(pos_ - 1, "invalid \\u escape");
          }
          // Encode the (BMP) code point as UTF-8; surrogate halves are kept
          // as-is rather than paired — report files never emit them, and a
          // lone surrogate must not crash the reader.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail(pos_ - 1, "invalid escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail(start, "invalid number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail(pos_, "digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-'))
        ++pos_;
      if (digits() == 0) fail(pos_, "digits required in exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) fail(start, "number out of range");
    return Value::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
};

[[noreturn]] void type_fail(const char* want) {
  throw util::SerializationError(std::string("json: value is not a ") + want);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::Bool) type_fail("bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) type_fail("number");
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) type_fail("string");
  return str_;
}

const std::vector<Value>& Value::as_array() const {
  if (type_ != Type::Array) type_fail("array");
  return arr_;
}

const std::vector<std::pair<std::string, Value>>& Value::as_object() const {
  if (type_ != Type::Object) type_fail("object");
  return obj_;
}

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

Value Value::make_null() { return Value(); }

Value Value::make_bool(bool b) {
  Value v;
  v.type_ = Type::Bool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double d) {
  Value v;
  v.type_ = Type::Number;
  v.num_ = d;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.type_ = Type::String;
  v.str_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::Array;
  v.arr_ = std::move(items);
  return v;
}

Value Value::make_object(std::vector<std::pair<std::string, Value>> members) {
  Value v;
  v.type_ = Type::Object;
  v.obj_ = std::move(members);
  return v;
}

Value parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_number(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

void dump_into(const Value& v, std::string& out) {
  switch (v.type()) {
    case Value::Type::Null:
      out += "null";
      break;
    case Value::Type::Bool:
      out += v.as_bool() ? "true" : "false";
      break;
    case Value::Type::Number:
      out += format_number(v.as_number());
      break;
    case Value::Type::String:
      out += '"';
      out += escape(v.as_string());
      out += '"';
      break;
    case Value::Type::Array: {
      out += '[';
      bool first = true;
      for (const Value& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        dump_into(item, out);
      }
      out += ']';
      break;
    }
    case Value::Type::Object: {
      out += '{';
      bool first = true;
      for (const auto& [key, member] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += escape(key);
        out += "\":";
        dump_into(member, out);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& v) {
  std::string out;
  dump_into(v, out);
  return out;
}

}  // namespace fgp::obs::json
