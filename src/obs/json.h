// json.h — a minimal JSON DOM used by the observability layer.
//
// The trace/metrics/residual reports are emitted as JSON; fgptrace and the
// tests must read them back (and survive hostile bytes — test_fuzz feeds
// this parser a corruption corpus). Parsing throws
// util::SerializationError on any malformed input; it never crashes and
// bounds recursion depth, so adversarial files fail cleanly.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace fgp::obs::json {

/// One JSON value. Objects preserve insertion order (report files are
/// written in canonical order, and byte-level diffs rely on it).
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  /// Typed accessors; throw util::SerializationError on a type mismatch so
  /// validators can treat shape errors uniformly.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::vector<std::pair<std::string, Value>>& as_object() const;

  /// Object lookup: nullptr when `key` is absent (or not an object).
  const Value* find(std::string_view key) const;

  static Value make_null();
  static Value make_bool(bool b);
  static Value make_number(double d);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::vector<std::pair<std::string, Value>> members);

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Parses one complete JSON document (trailing garbage is an error).
/// Throws util::SerializationError on malformed input; nesting deeper than
/// `max_depth` is rejected rather than recursed into.
Value parse(std::string_view text, std::size_t max_depth = 96);

/// Escapes `s` for embedding inside a JSON string literal (no quotes).
std::string escape(std::string_view s);

/// Canonical number formatting shared by every report writer: integral
/// values within the exact-double range print as integers, everything else
/// as shortest-round-trip-ish %.17g. Deterministic for identical bits.
std::string format_number(double v);

/// Canonical compact serialization: insertion-order objects, format_number
/// numbers, escaped strings. dump(parse(x)) is a normal form — fgptrace
/// --diff compares documents through it.
std::string dump(const Value& v);

}  // namespace fgp::obs::json
