#include "obs/residual.h"

#include <cmath>
#include <sstream>

#include "obs/json.h"

namespace fgp::obs {

ComponentTimes ResidualPoint::residual() const {
  ComponentTimes r;
  r.disk = predicted.disk - observed.disk;
  r.network = predicted.network - observed.network;
  r.compute_local = predicted.compute_local - observed.compute_local;
  r.ro_comm = predicted.ro_comm - observed.ro_comm;
  r.global_red = predicted.global_red - observed.global_red;
  return r;
}

double ResidualPoint::rel_error_total() const {
  const double exact = observed.total();
  if (exact == 0.0) return 0.0;
  return std::abs(predicted.total() - exact) / exact;
}

namespace {

void emit_components(std::ostringstream& os, const ComponentTimes& c) {
  os << "{\"disk\": " << json::format_number(c.disk)
     << ", \"network\": " << json::format_number(c.network)
     << ", \"compute_local\": " << json::format_number(c.compute_local)
     << ", \"ro_comm\": " << json::format_number(c.ro_comm)
     << ", \"global_red\": " << json::format_number(c.global_red) << "}";
}

}  // namespace

std::string ResidualReport::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"fgpred-residuals-v1\",\n";
  os << "  \"sweep\": \"" << json::escape(sweep_) << "\",\n";
  os << "  \"model\": \"" << json::escape(model_) << "\",\n";
  os << "  \"points\": [";
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const ResidualPoint& p = points_[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "    {\"label\": \"" << json::escape(p.label) << "\",\n";
    os << "     \"predicted\": ";
    emit_components(os, p.predicted);
    os << ",\n     \"observed\": ";
    emit_components(os, p.observed);
    os << ",\n     \"residual\": ";
    emit_components(os, p.residual());
    os << ",\n     \"rel_error_total\": "
       << json::format_number(p.rel_error_total()) << "}";
  }
  os << (points_.empty() ? "" : "\n  ") << "]\n";
  os << "}\n";
  return os.str();
}

}  // namespace fgp::obs
