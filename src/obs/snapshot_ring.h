// snapshot_ring.h — a time series of Registry snapshots.
//
// A Registry answers "what are the totals now"; rate-over-time questions
// ("did queries/sec sag mid-run?") need periodic snapshots. The
// SnapshotRing keeps a fixed-capacity ring of them: each capture copies
// the scalar (counter/gauge) values of both domains plus a host-clock
// stamp, and the export (schema "fgpred-snapshots-v1") lets tooling
// difference consecutive snapshots into rates.
//
// Domain split (DESIGN.md §17): the deterministic scalars and the capture
// sequence numbers are Deterministic-domain — captures taken at
// deterministic program points export byte-identically via
// to_json(false); the host stamps and host scalars are Host-domain and
// stripped in that mode.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace fgp::obs {

class Registry;

class SnapshotRing {
 public:
  struct Snapshot {
    std::uint64_t seq = 0;      ///< capture index (0-based, ever)
    double host_seconds = 0.0;  ///< caller-supplied host-clock stamp
    std::vector<std::pair<std::string, double>> deterministic;
    std::vector<std::pair<std::string, double>> host;
  };

  /// `capacity` bounds the ring (>= 1; clamped).
  explicit SnapshotRing(std::size_t capacity = 64);

  std::size_t capacity() const { return capacity_; }

  /// Copies `registry`'s scalar values into the ring (overwriting the
  /// oldest snapshot when full). `host_seconds` is the caller's host
  /// clock (util::Stopwatch), stored as Host-domain data. Thread-safe.
  void capture(const Registry& registry, double host_seconds);

  /// Total captures ever (>= snapshots().size()).
  std::uint64_t captured() const;

  /// Surviving snapshots, oldest first.
  std::vector<Snapshot> snapshots() const;

  void clear();

  /// Canonical JSON (schema "fgpred-snapshots-v1"), snapshots oldest
  /// first; `include_host` = false drops the host stamps and host
  /// scalars (byte-comparison mode).
  std::string to_json(bool include_host = true) const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Snapshot> ring_;
  std::size_t next_ = 0;  ///< ring slot the next capture overwrites
  std::uint64_t captured_ = 0;
};

}  // namespace fgp::obs
