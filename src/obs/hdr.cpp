#include "obs/hdr.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>

#include "obs/json.h"

namespace fgp::obs {

std::size_t HdrHistogram::bucket_index(std::uint64_t ns) {
  if (ns < kSubBuckets) return static_cast<std::size_t>(ns);
  // Shift so the value lands in [kSubBucketHalf, kSubBuckets): the top
  // kSubBucketBits bits index the sub-bucket, everything below is the
  // (bounded) rounding error.
  const int shift = std::bit_width(ns) - kSubBucketBits;
  const std::uint64_t sub = ns >> shift;
  return static_cast<std::size_t>(
      kSubBuckets + static_cast<std::uint64_t>(shift - 1) * kSubBucketHalf +
      (sub - kSubBucketHalf));
}

std::uint64_t HdrHistogram::bucket_upper_edge(std::size_t index) {
  if (index < kSubBuckets) return index;  // exact single-value buckets
  const std::uint64_t shift = (index - kSubBuckets) / kSubBucketHalf + 1;
  const std::uint64_t sub = (index - kSubBuckets) % kSubBucketHalf +
                            kSubBucketHalf;
  // The last bucket's edge ((sub+1) << shift) is exactly 2^64; unsigned
  // wraparound of the -1 yields the intended 2^64 - 1.
  return ((sub + 1) << shift) - 1;
}

void HdrHistogram::observe_seconds(double seconds) {
  double ns = seconds * 1e9;
  if (!(ns > 0.0)) ns = 0.0;  // clamps NaN and negative clock misuse
  // Saturate at 2^63 ns (~292 years) before the cast goes undefined.
  const std::uint64_t v = ns >= 9.2e18
                              ? std::numeric_limits<std::uint64_t>::max()
                              : static_cast<std::uint64_t>(ns);
  observe_ns(v);
}

void HdrHistogram::observe_ns(std::uint64_t ns) {
  buckets_[bucket_index(ns)] += 1;
  if (count_ == 0) {
    min_ns_ = ns;
    max_ns_ = ns;
  } else {
    if (ns < min_ns_) min_ns_ = ns;
    if (ns > max_ns_) max_ns_ = ns;
  }
  count_ += 1;
  sum_ns_ += ns;
}

void HdrHistogram::merge(const HdrHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0 || other.min_ns_ < min_ns_) min_ns_ = other.min_ns_;
  if (other.max_ns_ > max_ns_) max_ns_ = other.max_ns_;
  for (std::size_t i = 0; i < kBucketCount; ++i)
    buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
}

void HdrHistogram::clear() {
  buckets_.fill(0);
  count_ = 0;
  sum_ns_ = 0;
  min_ns_ = 0;
  max_ns_ = 0;
}

double HdrHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (!(q > 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cum += buckets_[i];
    if (cum >= rank) {
      const std::uint64_t edge =
          std::clamp(bucket_upper_edge(i), min_ns_, max_ns_);
      return static_cast<double>(edge) * 1e-9;
    }
  }
  return static_cast<double>(max_ns_) * 1e-9;
}

std::string HdrHistogram::to_json_object() const {
  std::ostringstream os;
  os << "{\"count\": " << count_
     << ", \"sum_s\": " << json::format_number(sum_seconds())
     << ", \"min_s\": " << json::format_number(min_seconds())
     << ", \"max_s\": " << json::format_number(max_seconds())
     << ", \"p50_s\": " << json::format_number(quantile(0.50))
     << ", \"p90_s\": " << json::format_number(quantile(0.90))
     << ", \"p99_s\": " << json::format_number(quantile(0.99))
     << ", \"p999_s\": " << json::format_number(quantile(0.999)) << "}";
  return os.str();
}

}  // namespace fgp::obs
