#include "obs/slowlog.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "obs/json.h"

namespace fgp::obs {

SlowQueryLog::SlowQueryLog(double threshold_s, std::size_t capacity)
    : threshold_s_(threshold_s), capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

void SlowQueryLog::maybe_record(SlowQueryEntry entry) {
  if (!(entry.latency_s > threshold_s_)) return;
  std::lock_guard lock(mu_);
  seen_ += 1;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
    return;
  }
  ring_[next_] = std::move(entry);
  next_ = (next_ + 1) % capacity_;
}

std::uint64_t SlowQueryLog::seen() const {
  std::lock_guard lock(mu_);
  return seen_;
}

std::vector<SlowQueryEntry> SlowQueryLog::entries() const {
  std::lock_guard lock(mu_);
  std::vector<SlowQueryEntry> out;
  out.reserve(ring_.size());
  // Oldest first: the slot `next_` overwrites next is the oldest entry
  // once the ring has wrapped.
  const std::size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void SlowQueryLog::clear() {
  std::lock_guard lock(mu_);
  ring_.clear();
  next_ = 0;
  seen_ = 0;
}

std::string SlowQueryLog::to_json() const {
  const std::vector<SlowQueryEntry> list = entries();
  std::uint64_t seen_now = 0;
  {
    std::lock_guard lock(mu_);
    seen_now = seen_;
  }
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"fgpred-slowlog-v1\",\n";
  os << "  \"threshold_s\": " << json::format_number(threshold_s_) << ",\n";
  os << "  \"capacity\": " << capacity_ << ",\n";
  os << "  \"seen\": " << seen_now << ",\n";
  os << "  \"entries\": [";
  for (std::size_t i = 0; i < list.size(); ++i) {
    const SlowQueryEntry& e = list[i];
    os << (i == 0 ? "\n    " : ",\n    ");
    os << "{\"app\": \"" << json::escape(e.app) << "\", \"dataset\": \""
       << json::escape(e.dataset)
       << "\", \"latency_s\": " << json::format_number(e.latency_s)
       << ", \"candidates_considered\": " << e.candidates_considered
       << ", \"chosen\": \"" << json::escape(e.chosen) << "\", \"error\": \""
       << json::escape(e.error)
       << "\", \"topology_version\": " << e.topology_version << "}";
  }
  if (!list.empty()) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

}  // namespace fgp::obs
