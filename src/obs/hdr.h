// hdr.h — bounded-error latency quantiles for the service hot path.
//
// obs::Histogram's decade buckets answer "which order of magnitude" — at
// ~27 µs per selection query, p50 and p99 land in the same bucket. This
// recorder keeps HDR-style log-linear buckets over nanosecond integers:
// every bucket spans at most 1/32 of its lower edge, so any quantile read
// back is within ~3.1% of the true value, at a fixed ~15 KiB of counters.
//
// Concurrency model (DESIGN.md §17): an HdrHistogram is single-writer and
// deliberately lock-free-by-ownership — the parallel evaluate phase
// records into per-task slots or per-thread recorders nobody else
// touches, and the batch end merges them *in index order*. Because every
// field is an integral accumulation (counts, nanosecond sums, min/max),
// a merge in any order yields identical bits; merging in index order
// keeps even that choice canonical. There is no internal mutex: sharing
// one recorder across concurrent writers is a bug (TSan-visible), not a
// supported mode.
//
// Domain placement: latency is wall-clock, so every export of this type
// is Host-domain data — never part of a byte-identity comparison.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace fgp::obs {

class HdrHistogram {
 public:
  /// 2^6 sub-buckets per power of two: relative bucket width <= 1/32.
  static constexpr int kSubBucketBits = 6;
  static constexpr std::uint64_t kSubBuckets = 1ull << kSubBucketBits;
  static constexpr std::uint64_t kSubBucketHalf = kSubBuckets / 2;
  /// Flat bucket count covering the full 64-bit nanosecond range:
  /// kSubBuckets linear buckets for values < 64 ns, then kSubBucketHalf
  /// log-linear buckets per doubling up to 2^64 (1920 total).
  static constexpr std::size_t kBucketCount =
      kSubBuckets + (64 - kSubBucketBits) * kSubBucketHalf;

  /// Records one latency in seconds. Negative / NaN observations clamp
  /// to 0 (they can only come from clock misuse; dropping them would
  /// desynchronize count against the caller's bookkeeping).
  void observe_seconds(double seconds);

  /// Records one latency in integer nanoseconds (the native unit).
  void observe_ns(std::uint64_t ns);

  /// Adds `other`'s state into this recorder. Purely integral, so the
  /// result is bit-identical regardless of merge order; callers merge in
  /// index order anyway to keep the discipline visible.
  void merge(const HdrHistogram& other);

  void clear();

  /// Quantile estimate in seconds, q in [0, 1]. Walks the cumulative
  /// counts to the smallest bucket covering rank ceil(q * count) and
  /// returns that bucket's upper edge, clamped into [min, max] so exact
  /// extremes are exact. 0 when empty.
  double quantile(double q) const;

  std::uint64_t count() const { return count_; }
  double sum_seconds() const { return static_cast<double>(sum_ns_) * 1e-9; }
  double min_seconds() const {
    return count_ == 0 ? 0.0 : static_cast<double>(min_ns_) * 1e-9;
  }
  double max_seconds() const { return static_cast<double>(max_ns_) * 1e-9; }

  /// Canonical JSON object fragment (no trailing newline):
  /// {"count": ..., "sum_s": ..., "min_s": ..., "max_s": ...,
  ///  "p50_s": ..., "p90_s": ..., "p99_s": ..., "p999_s": ...}.
  /// Host-domain data by construction (wall-clock latencies).
  std::string to_json_object() const;

  /// The flat bucket index of a nanosecond value (pure; exposed for the
  /// boundary tests).
  static std::size_t bucket_index(std::uint64_t ns);
  /// Largest nanosecond value stored in bucket `index` (inclusive).
  static std::uint64_t bucket_upper_edge(std::size_t index);

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ns_ = 0;
  std::uint64_t min_ns_ = 0;
  std::uint64_t max_ns_ = 0;
};

}  // namespace fgp::obs
