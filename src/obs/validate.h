// validate.h — structural validation of the observability report files.
//
// Shared between the fgptrace CLI and the test suite so "loads in
// Perfetto" is checked by one implementation: Chrome-trace JSON shape
// (balanced B/E per track, strictly increasing per-track timestamps,
// non-negative X durations), metrics-snapshot shape, and residual-report
// shape. Validation never throws on malformed-but-parseable documents —
// it returns the error list; only unparseable JSON surfaces as
// util::SerializationError from obs::json::parse.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace fgp::obs {

enum class ReportKind {
  Unknown,
  Trace,
  Metrics,
  Residuals,
  Slowlog,
  Drift,
  Snapshots,
};

struct ValidationResult {
  ReportKind kind = ReportKind::Unknown;
  std::vector<std::string> errors;

  bool ok() const { return kind != ReportKind::Unknown && errors.empty(); }
};

const char* to_string(ReportKind kind);

/// Dispatches on the document's "schema" field and validates the matching
/// shape. Unknown or missing schema yields kind == Unknown with an error.
ValidationResult validate_report(const json::Value& doc);

/// Parses `text` then validates. Throws util::SerializationError when the
/// text is not JSON at all.
ValidationResult validate_report_text(std::string_view text);

ValidationResult validate_trace(const json::Value& doc);
ValidationResult validate_metrics(const json::Value& doc);
ValidationResult validate_residuals(const json::Value& doc);
ValidationResult validate_slowlog(const json::Value& doc);
ValidationResult validate_drift(const json::Value& doc);
ValidationResult validate_snapshots(const json::Value& doc);

}  // namespace fgp::obs
