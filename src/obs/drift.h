// drift.h — the residual drift monitor.
//
// A prediction service is only as good as its model stays: once disk or
// WAN behaviour shifts under the profile, every selection it makes is
// quietly wrong. The DriftMonitor watches the live stream of
// predicted-vs-observed residual points (core::make_residual_point's
// output) and keeps, per model component, an EWMA and a sliding-window
// mean/variance of the *signed relative residual*
//
//     r_c = (predicted_c - observed_c) / observed_total
//
// normalized by the observed total so a 2 ms miss on a 3 ms disk phase
// and on a 3 s run don't read the same. A component is flagged as
// drifting while |EWMA| exceeds the configured band — the signal the
// ROADMAP's feedback-driven rescheduler (and online re-fitting) will
// consume.
//
// Determinism (DESIGN.md §17): the monitor's state is a pure function of
// the observed point sequence, so feeding it in a deterministic order
// keeps to_json() (schema "fgpred-drift-v1") byte-identical across pool
// sizes. It has no internal lock: the owner feeds it from one serial
// program point (batch end, sweep loop), matching every other
// deterministic-domain recorder.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/residual.h"

namespace fgp::obs {

struct DriftConfig {
  /// EWMA weight of the newest residual, in (0, 1].
  double alpha = 0.2;
  /// Sliding-window length for mean/variance, >= 1.
  int window = 64;
  /// |EWMA| above this flags the component as drifting.
  double band = 0.1;
};

class DriftMonitor {
 public:
  /// Throws util::ConfigError on an out-of-range config.
  explicit DriftMonitor(DriftConfig config = {});

  static constexpr int kComponents = 5;
  /// Component order everywhere (state, JSON): matches the residual
  /// report schema.
  static const std::array<const char*, kComponents> kComponentNames;

  const DriftConfig& config() const { return config_; }

  /// Feeds one predicted-vs-observed point. Points with a non-positive
  /// observed total carry no usable signal and are counted but skipped.
  void observe(const ResidualPoint& point);

  std::uint64_t points() const { return points_; }

  /// Component state, index per kComponentNames order.
  double ewma(int component) const;
  double window_mean(int component) const;
  /// Population variance over the window.
  double window_variance(int component) const;
  bool drifting(int component) const;
  /// True while any component drifts.
  bool any_drifting() const;

  void clear();

  /// Canonical JSON (schema "fgpred-drift-v1"). Deterministic-domain: a
  /// pure function of the observed point sequence.
  std::string to_json() const;

 private:
  struct ComponentState {
    double ewma = 0.0;
    bool seeded = false;          ///< first sample initializes the EWMA
    std::vector<double> window;   ///< ring of the last `config.window` r_c
    std::size_t next = 0;
  };

  DriftConfig config_;
  std::array<ComponentState, kComponents> state_;
  std::uint64_t points_ = 0;
};

}  // namespace fgp::obs
