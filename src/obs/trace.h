// trace.h — the virtual-time trace recorder.
//
// The runtime's phase engine computes exactly where a job's virtual time
// goes (T_exec = T_disk + T_network + T_compute(T_ro, T_g)); this recorder
// captures that decomposition as a per-node, per-pass event sequence that
// loads directly in Perfetto / chrome://tracing.
//
// Two clock domains (DESIGN.md §12):
//
//   virtual  deterministic timestamps derived from the phase engine. The
//            exported JSON is a pure function of the recorded span set, so
//            with a fixed seed it is byte-identical across the serial
//            runtime and any host pool size (tests/test_obs.cpp).
//   host     real wall-clock spans (util::Stopwatch — the sanctioned
//            clock), off by default and emitted on a segregated "host"
//            process so `to_chrome_json(false)` (and `fgptrace --diff`)
//            can strip them before byte comparison.
//
// Recording defaults to *off* everywhere: hot paths hold a
// `TraceRecorder*` that is nullptr unless the caller opts in, so the only
// cost of the subsystem on an untraced run is a pointer test.
#pragma once

#include <cstddef>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/wallclock.h"

namespace fgp::obs {

/// Track-level constants for the Chrome-trace export: virtual job-level
/// spans live on pid 0, per-node spans on pid node+1, host spans on a
/// far-away pid so they are visually and mechanically separable.
inline constexpr int kJobNode = -1;
inline constexpr int kHostPid = 10000;

class TraceRecorder {
 public:
  TraceRecorder() = default;

  /// Opt into recording host wall-clock spans (default: dropped).
  void enable_host(bool on) { host_enabled_ = on; }
  bool host_enabled() const { return host_enabled_; }

  /// Records a virtual-time span. `node` is a compute-node index or
  /// kJobNode for job-level phases; `pass` < 0 means "no pass" (omitted
  /// from args). Spans on one (node, category) track must properly nest
  /// or be disjoint — the runtime's phase layout guarantees this.
  /// Thread-safe; throws util::Error on begin/end out of order.
  void span(std::string_view category, std::string_view name, int node,
            int pass, double begin_s, double end_s);

  /// Records a fine-grained virtual span (e.g. one chunk block) exported
  /// as a Chrome "X" complete event on the `<category>/detail` track of
  /// its node, keeping the B/E tracks strictly monotonic.
  void detail(std::string_view category, std::string_view name, int node,
              int pass, double begin_s, double end_s);

  /// Records a virtual-time counter sample (e.g. the event engine's queue
  /// depth), exported as a Chrome "C" event on the `<category>/counter`
  /// track of its node. Samples on one track must arrive with
  /// non-decreasing timestamps; the exporter applies the same 1 ns
  /// tie-break as spans so the per-track strictly-increasing invariant
  /// holds. Deterministic domain: same byte-identity contract as span().
  void counter(std::string_view category, std::string_view name, int node,
               double time_s, double value);

  /// Records a host wall-clock span (seconds relative to host_now()'s
  /// epoch). Dropped unless enable_host(true).
  void host_span(std::string_view category, std::string_view name,
                 double begin_s, double end_s);

  /// Seconds since this recorder was constructed (host clock epoch).
  double host_now() const { return epoch_.seconds(); }

  std::size_t event_count() const;
  void clear();

  /// Exports the trace as Chrome-trace-event JSON (object format, schema
  /// "fgpred-trace-v1"). The output is canonically ordered and therefore
  /// deterministic; `include_host` = false drops every host-domain event
  /// (byte-comparison mode).
  std::string to_chrome_json(bool include_host = true) const;

 private:
  enum class Kind { Span, Detail, Counter, Host };
  struct Event {
    Kind kind = Kind::Span;
    std::string category;
    std::string name;
    int node = kJobNode;
    int pass = -1;
    long long begin_ns = 0;
    long long end_ns = 0;
    double value = 0.0;  ///< Counter events only
  };

  void push(Event e);

  mutable std::mutex mu_;
  std::vector<Event> events_;
  bool host_enabled_ = false;
  util::Stopwatch epoch_;
};

/// RAII host span: stamps begin on construction and records on
/// destruction. A null recorder (or host recording disabled) makes this a
/// no-op beyond one branch.
class HostSpan {
 public:
  HostSpan(TraceRecorder* rec, std::string_view category,
           std::string_view name)
      : rec_(rec != nullptr && rec->host_enabled() ? rec : nullptr),
        category_(category),
        name_(name),
        begin_(rec_ != nullptr ? rec_->host_now() : 0.0) {}

  ~HostSpan() {
    if (rec_ != nullptr)
      rec_->host_span(category_, name_, begin_, rec_->host_now());
  }

  HostSpan(const HostSpan&) = delete;
  HostSpan& operator=(const HostSpan&) = delete;

 private:
  TraceRecorder* rec_;
  std::string category_;
  std::string name_;
  double begin_;
};

}  // namespace fgp::obs
