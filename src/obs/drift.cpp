#include "obs/drift.h"

#include <cmath>
#include <sstream>

#include "obs/json.h"
#include "util/check.h"

namespace fgp::obs {

namespace {

std::array<double, DriftMonitor::kComponents> components_of(
    const ComponentTimes& t) {
  return {t.disk, t.network, t.compute_local, t.ro_comm, t.global_red};
}

}  // namespace

const std::array<const char*, DriftMonitor::kComponents>
    DriftMonitor::kComponentNames = {"disk", "network", "compute_local",
                                     "ro_comm", "global_red"};

DriftMonitor::DriftMonitor(DriftConfig config) : config_(config) {
  if (!(config_.alpha > 0.0) || config_.alpha > 1.0 ||
      !std::isfinite(config_.alpha))
    throw util::ConfigError("drift config alpha must be in (0, 1]");
  if (config_.window < 1 || config_.window > (1 << 20))
    throw util::ConfigError("drift config window must be in [1, 1048576]");
  if (!(config_.band >= 0.0) || !std::isfinite(config_.band))
    throw util::ConfigError("drift config band must be >= 0");
}

void DriftMonitor::observe(const ResidualPoint& point) {
  points_ += 1;
  const double observed_total = point.observed.total();
  if (!(observed_total > 0.0) || !std::isfinite(observed_total)) return;
  const auto predicted = components_of(point.predicted);
  const auto observed = components_of(point.observed);
  for (int c = 0; c < kComponents; ++c) {
    const double r = (predicted[static_cast<std::size_t>(c)] -
                      observed[static_cast<std::size_t>(c)]) /
                     observed_total;
    ComponentState& s = state_[static_cast<std::size_t>(c)];
    if (!s.seeded) {
      s.ewma = r;
      s.seeded = true;
    } else {
      s.ewma = config_.alpha * r + (1.0 - config_.alpha) * s.ewma;
    }
    if (s.window.size() < static_cast<std::size_t>(config_.window)) {
      s.window.push_back(r);
    } else {
      s.window[s.next] = r;
      s.next = (s.next + 1) % s.window.size();
    }
  }
}

double DriftMonitor::ewma(int component) const {
  return state_[static_cast<std::size_t>(component)].ewma;
}

double DriftMonitor::window_mean(int component) const {
  const ComponentState& s = state_[static_cast<std::size_t>(component)];
  if (s.window.empty()) return 0.0;
  double sum = 0.0;
  for (const double r : s.window) sum += r;
  return sum / static_cast<double>(s.window.size());
}

double DriftMonitor::window_variance(int component) const {
  const ComponentState& s = state_[static_cast<std::size_t>(component)];
  if (s.window.empty()) return 0.0;
  const double mean = window_mean(component);
  double sum = 0.0;
  for (const double r : s.window) sum += (r - mean) * (r - mean);
  return sum / static_cast<double>(s.window.size());
}

bool DriftMonitor::drifting(int component) const {
  const ComponentState& s = state_[static_cast<std::size_t>(component)];
  return s.seeded && std::abs(s.ewma) > config_.band;
}

bool DriftMonitor::any_drifting() const {
  for (int c = 0; c < kComponents; ++c)
    if (drifting(c)) return true;
  return false;
}

void DriftMonitor::clear() {
  for (ComponentState& s : state_) s = ComponentState{};
  points_ = 0;
}

std::string DriftMonitor::to_json() const {
  std::ostringstream os;
  os << "{\n";
  os << "  \"schema\": \"fgpred-drift-v1\",\n";
  os << "  \"alpha\": " << json::format_number(config_.alpha) << ",\n";
  os << "  \"window\": " << config_.window << ",\n";
  os << "  \"band\": " << json::format_number(config_.band) << ",\n";
  os << "  \"points\": " << points_ << ",\n";
  os << "  \"components\": {";
  for (int c = 0; c < kComponents; ++c) {
    os << (c == 0 ? "\n    " : ",\n    ");
    os << "\"" << kComponentNames[static_cast<std::size_t>(c)]
       << "\": {\"ewma\": " << json::format_number(ewma(c))
       << ", \"window_mean\": " << json::format_number(window_mean(c))
       << ", \"window_var\": " << json::format_number(window_variance(c))
       << ", \"drifting\": " << (drifting(c) ? "true" : "false") << "}";
  }
  os << "\n  },\n";
  os << "  \"drifting\": " << (any_drifting() ? "true" : "false") << "\n";
  os << "}\n";
  return os.str();
}

}  // namespace fgp::obs
