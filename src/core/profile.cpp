#include "core/profile.h"

namespace fgp::core {

Profile ProfileCollector::collect(const freeride::JobSetup& setup,
                                  freeride::ReductionKernel& kernel,
                                  util::ThreadPool* pool) {
  const freeride::Runtime runtime(pool);
  const freeride::RunResult result = runtime.run(setup, kernel);
  return from_result(setup, kernel.name(), result);
}

Profile ProfileCollector::from_result(const freeride::JobSetup& setup,
                                      const std::string& app,
                                      const freeride::RunResult& result) {
  Profile p;
  p.app = app;
  p.config.data_nodes = setup.config.data_nodes;
  p.config.compute_nodes = setup.config.compute_nodes;
  p.config.threads_per_node = setup.config.threads_per_node;
  p.config.dataset_bytes = setup.dataset->total_virtual_bytes();
  p.config.bandwidth_Bps = setup.wan.per_link_Bps;
  p.config.data_cluster = setup.data_cluster.name;
  p.config.compute_cluster = setup.compute_cluster.name;
  p.t_disk = result.timing.total.disk;
  p.t_network = result.timing.total.network;
  p.t_compute = result.timing.total.compute();
  p.t_ro = result.timing.total.ro_comm;
  p.t_g = result.timing.total.global_red;
  p.object_bytes = result.timing.max_object_bytes;
  p.passes = result.passes;
  return p;
}

}  // namespace fgp::core
