#include "core/ipc_probe.h"

#include "util/check.h"

namespace fgp::core {

IpcParams measure_ipc(const sim::ClusterSpec& cluster) {
  // Two probe sizes, far apart so the fit is well-conditioned.
  const double s1 = 4 * 1024.0;
  const double s2 = 4 * 1024.0 * 1024.0;
  const double t1 = cluster.interconnect.message_time(s1);
  const double t2 = cluster.interconnect.message_time(s2);
  IpcParams p;
  p.w = (t2 - t1) / (s2 - s1);
  p.l = t1 - p.w * s1;
  FGP_CHECK_MSG(p.w > 0.0 && p.l >= 0.0, "probe produced nonsensical params");
  return p;
}

}  // namespace fgp::core
