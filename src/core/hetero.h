// hetero.h — predictions across heterogeneous clusters (paper §3.4).
//
// Component-wise scaling factors s_d, s_n, s_c are measured by running a
// small set of representative FREERIDE-G applications on *identical
// configurations* (same node counts, same dataset) on both clusters and
// averaging the per-component time ratios:
//   s_d = mean_i( T_disk,i,B / T_disk,i,A )   (likewise s_n, s_c)
// A prediction for cluster B is then the cluster-A prediction with each
// component scaled:
//   T̂_B = s_d·T̂_disk,A + s_n·T̂_net,A + s_c·T̂_comp,A
// The averaged s_c is the main error source: apps differ in flop:byte mix
// (the paper observed per-app factors from 0.233 to 0.370).
#pragma once

#include <span>

#include "core/predictor.h"

namespace fgp::core {

struct ScalingFactors {
  double disk = 1.0;     ///< s_d
  double network = 1.0;  ///< s_n
  double compute = 1.0;  ///< s_c
};

/// Computes the averaged factors from representative-application profiles
/// collected on matching configurations. Profiles are matched by app name;
/// each matched pair must have identical (n, c, s) per the paper's
/// "identical configuration" requirement — mismatches throw.
ScalingFactors compute_scaling_factors(std::span<const Profile> on_a,
                                       std::span<const Profile> on_b);

/// Wraps a cluster-A predictor with A->B scaling factors.
class HeteroPredictor {
 public:
  HeteroPredictor(Predictor base, ScalingFactors factors)
      : base_(std::move(base)), factors_(factors) {}

  PredictedTime predict(const ProfileConfig& target) const;

  const ScalingFactors& factors() const { return factors_; }

 private:
  Predictor base_;
  ScalingFactors factors_;
};

}  // namespace fgp::core
