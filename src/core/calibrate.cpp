#include "core/calibrate.h"

#include <cmath>

#include "util/check.h"
#include "util/wallclock.h"

namespace fgp::core {

CalibrationResult calibrate_machine(
    std::span<const CalibrationSample> samples) {
  FGP_CHECK_MSG(samples.size() >= 2, "calibration needs >= 2 samples");
  // Fit t = f*x + b*y with x = 1/F, y = 1/B via 2x2 normal equations.
  double sff = 0, sbb = 0, sfb = 0, sft = 0, sbt = 0;
  for (const auto& s : samples) {
    FGP_CHECK_MSG(s.seconds > 0.0, "sample with non-positive time");
    FGP_CHECK_MSG(s.work.flops > 0.0 && s.work.bytes > 0.0,
                  "sample with non-positive work");
    sff += s.work.flops * s.work.flops;
    sbb += s.work.bytes * s.work.bytes;
    sfb += s.work.flops * s.work.bytes;
    sft += s.work.flops * s.seconds;
    sbt += s.work.bytes * s.seconds;
  }
  const double det = sff * sbb - sfb * sfb;
  FGP_CHECK_MSG(std::abs(det) > 1e-9 * sff * sbb,
                "samples have indistinguishable flop:byte mixes");
  const double x = (sbb * sft - sfb * sbt) / det;  // 1/F
  const double y = (sff * sbt - sfb * sft) / det;  // 1/B
  FGP_CHECK_MSG(x > 0.0 && y > 0.0,
                "fit produced non-physical rates (mixes too similar or "
                "timings too noisy)");

  CalibrationResult out;
  out.cpu_flops = 1.0 / x;
  out.mem_Bps = 1.0 / y;
  for (const auto& s : samples) {
    const double fit = s.work.flops * x + s.work.bytes * y;
    out.max_residual_fraction = std::max(
        out.max_residual_fraction, std::abs(s.seconds - fit) / s.seconds);
  }
  return out;
}

CalibrationSample measure_kernel_sample(freeride::ReductionKernel& kernel,
                                        const repository::Chunk& chunk,
                                        int repeats) {
  FGP_CHECK(repeats >= 1);
  CalibrationSample sample;
  const util::Stopwatch stopwatch;
  for (int i = 0; i < repeats; ++i) {
    auto obj = kernel.create_object();
    sample.work += kernel.process_chunk(chunk, *obj);
  }
  sample.seconds = stopwatch.seconds();
  FGP_CHECK_MSG(sample.seconds > 0.0, "clock resolution too coarse");
  return sample;
}

}  // namespace fgp::core
