// selector.h — resource and replica selection, the model's raison d'être.
//
// "Our goal is to choose a replica and computing configuration pair where
// the data processing can be performed with the minimum cost. … our
// problem reduces to that of estimating the execution time for a
// particular configuration." The selector enumerates every candidate the
// grid catalog offers, predicts each one's execution time from a single
// application profile (applying heterogeneous scaling factors when the
// candidate's compute cluster differs from the profile's), and ranks
// candidates by predicted total time.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/hetero.h"
#include "grid/catalog.h"

namespace fgp::core {

struct RankedCandidate {
  grid::Candidate candidate;
  PredictedTime predicted;
  bool used_hetero_scaling = false;
};

class ResourceSelector {
 public:
  /// `scalers` maps a compute-cluster name to the A->that-cluster scaling
  /// factors; candidates on clusters with no entry and a different machine
  /// than the profile's are skipped (cannot be predicted).
  ResourceSelector(const grid::GridCatalog* catalog, Profile profile,
                   PredictorOptions options,
                   std::map<std::string, ScalingFactors> scalers = {});

  /// All predictable candidates for the dataset, cheapest first.
  std::vector<RankedCandidate> rank(const std::string& dataset,
                                    double dataset_bytes) const;

  /// The cheapest candidate; throws util::Error when none is predictable.
  RankedCandidate best(const std::string& dataset,
                       double dataset_bytes) const;

 private:
  const grid::GridCatalog* catalog_;
  Profile profile_;
  PredictorOptions options_;
  std::map<std::string, ScalingFactors> scalers_;
};

}  // namespace fgp::core
