#include "core/cache_planner.h"

#include <algorithm>

#include "util/check.h"

namespace fgp::core {

namespace {

/// Retrieval time of `bytes` over `chunks` chunks spread across `nodes`
/// nodes of `cluster` (even distribution, same formula as the runtime).
double retrieval_s(const sim::ClusterSpec& cluster, int nodes, double bytes,
                   std::uint64_t chunks) {
  const double per_node_bytes = bytes / static_cast<double>(nodes);
  const double per_node_chunks =
      static_cast<double>(chunks) / static_cast<double>(nodes);
  return cluster.machine.disk.startup_s +
         per_node_chunks * cluster.machine.disk.seek_s +
         per_node_bytes / cluster.per_node_retrieval_Bps(nodes);
}

/// Movement time of `bytes` over `chunks` messages from `senders` nodes
/// with NICs of `sender` machine through `wan`.
double movement_s(const sim::WanSpec& wan, const sim::MachineSpec& sender,
                  int senders, double bytes, std::uint64_t chunks) {
  const double per_node_bytes = bytes / static_cast<double>(senders);
  const double per_node_chunks =
      static_cast<double>(chunks) / static_cast<double>(senders);
  return per_node_chunks * wan.latency_s +
         per_node_bytes / wan.per_sender_bandwidth(senders,
                                                   sender.nic.bandwidth_Bps);
}

}  // namespace

CachePlanner::CachePlanner(CachePlannerInputs inputs) : in_(std::move(inputs)) {
  FGP_CHECK_MSG(in_.dataset_bytes > 0 && in_.chunks > 0,
                "planner needs a non-empty dataset");
  FGP_CHECK_MSG(in_.data_nodes > 0 && in_.compute_nodes > 0,
                "planner needs positive node counts");
}

double CachePlanner::repository_pass_s() const {
  return retrieval_s(in_.data_cluster, in_.data_nodes, in_.dataset_bytes,
                     in_.chunks) +
         movement_s(in_.wan, in_.data_cluster.machine, in_.data_nodes,
                    in_.dataset_bytes, in_.chunks) +
         in_.compute_time_per_pass_s;
}

CachePlan CachePlanner::plan_no_cache() const {
  CachePlan plan;
  plan.mode = freeride::CacheMode::None;
  plan.first_pass_s = repository_pass_s();
  plan.later_pass_s = plan.first_pass_s;
  return plan;
}

std::optional<CachePlan> CachePlanner::plan_local_disk() const {
  const double per_node_share =
      in_.dataset_bytes / static_cast<double>(in_.compute_nodes);
  if (per_node_share > in_.local_cache_capacity_bytes) return std::nullopt;

  CachePlan plan;
  plan.mode = freeride::CacheMode::LocalDisk;
  plan.first_pass_s = repository_pass_s();
  if (in_.charge_cache_write)
    plan.first_pass_s += retrieval_s(in_.compute_cluster, in_.compute_nodes,
                                     in_.dataset_bytes, in_.chunks);
  plan.later_pass_s = retrieval_s(in_.compute_cluster, in_.compute_nodes,
                                  in_.dataset_bytes, in_.chunks) +
                      in_.compute_time_per_pass_s;
  return plan;
}

CachePlan CachePlanner::plan_site(const freeride::CacheSiteSetup& site) const {
  FGP_CHECK_MSG(site.nodes > 0, "cache site needs nodes");
  CachePlan plan;
  plan.mode = freeride::CacheMode::NonLocalSite;
  plan.site_name = site.cluster.name;
  // First pass: repository path plus the forward-and-write to the site.
  plan.first_pass_s =
      repository_pass_s() +
      movement_s(site.wan_to_compute, in_.compute_cluster.machine, site.nodes,
                 in_.dataset_bytes, in_.chunks);
  if (in_.charge_cache_write)
    plan.first_pass_s +=
        retrieval_s(site.cluster, site.nodes, in_.dataset_bytes, in_.chunks);
  // Later passes: read at the site, ship over the site's pipe.
  plan.later_pass_s =
      retrieval_s(site.cluster, site.nodes, in_.dataset_bytes, in_.chunks) +
      movement_s(site.wan_to_compute, site.cluster.machine, site.nodes,
                 in_.dataset_bytes, in_.chunks) +
      in_.compute_time_per_pass_s;
  return plan;
}

std::vector<CachePlan> CachePlanner::rank(
    int passes, std::span<const freeride::CacheSiteSetup> sites) const {
  FGP_CHECK_MSG(passes >= 1, "need at least one pass");
  std::vector<CachePlan> plans;
  plans.push_back(plan_no_cache());
  if (auto local = plan_local_disk()) plans.push_back(*local);
  for (const auto& site : sites) plans.push_back(plan_site(site));
  std::sort(plans.begin(), plans.end(),
            [passes](const CachePlan& a, const CachePlan& b) {
              return a.total_s(passes) < b.total_s(passes);
            });
  return plans;
}

}  // namespace fgp::core
