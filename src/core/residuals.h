// residuals.h — bridge from the predictor's component split to the
// observability layer's residual reports.
//
// core::PredictedTime (predictor.h) and freeride::TimingBreakdown
// (freeride/timing.h) both carry the model's five components — disk,
// network, compute_local, ro_comm, global_red — but are deliberately
// separate types (the predictor must not depend on runtime internals and
// vice versa). make_residual_point projects one (predicted, observed)
// pair onto obs::ResidualPoint so a sweep can report per-component
// residuals (DESIGN.md §12) without either side learning about the
// other.
#pragma once

#include <string>

#include "core/predictor.h"
#include "freeride/timing.h"
#include "obs/residual.h"

namespace fgp::core {

/// Builds one residual sweep point from the model's predicted component
/// split and the virtual cluster's observed per-component times. The
/// projected predicted total equals PredictedTime::total() because
/// `compute` is by contract the sum of its three split parts (pinned by
/// tests/test_obs.cpp PredictedTimeComponentSplitSumsToCompute).
obs::ResidualPoint make_residual_point(
    std::string label, const PredictedTime& predicted,
    const freeride::TimingBreakdown& observed);

}  // namespace fgp::core
