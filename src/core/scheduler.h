// scheduler.h — prediction-driven resource allocation for a stream of jobs.
//
// "A major goal of grid computing is enabling applications to identify and
// allocate resources dynamically. … for a middleware to perform resource
// allocation, prediction models are needed" (paper §1). This module closes
// that loop: a stream of FREERIDE-G jobs arrives at the grid, each job's
// candidate (replica, compute-site, node-count) placements are costed with
// the prediction framework, queue waits are derived from existing
// reservations, and the scheduler commits the placement minimizing the
// *predicted completion time* (wait + execution). Alternative policies
// (round-robin, grab-the-most-nodes) exist to quantify what the model
// buys.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/hetero.h"
#include "core/selector.h"
#include "grid/catalog.h"

namespace fgp::core {

/// A job submitted to the grid.
struct JobRequest {
  std::string id;
  std::string dataset;        ///< replica lookup key in the catalog
  double dataset_bytes = 0.0;
  Profile profile;            ///< previously collected profile
  AppClasses classes;
  double submit_time_s = 0.0;  ///< non-decreasing across the stream
};

/// One committed scheduling decision.
struct Placement {
  std::string job_id;
  grid::Candidate candidate;
  double start_s = 0.0;
  double predicted_exec_s = 0.0;
  double actual_exec_s = 0.0;
  double finish_s = 0.0;  ///< start + actual execution

  double turnaround_s(double submit) const { return finish_s - submit; }
};

enum class SchedulingPolicy {
  PredictedBest,  ///< argmin of predicted completion (the paper's point)
  RoundRobin,     ///< rotate through candidates, ignore the model
  MaxNodes,       ///< always grab the largest compute allocation
};

class GridScheduler {
 public:
  /// `scalers` as in ResourceSelector: needed to predict candidates on
  /// clusters other than the profile's.
  GridScheduler(const grid::GridCatalog* catalog, SchedulingPolicy policy,
                std::map<std::string, ScalingFactors> scalers = {});

  /// Ground-truth execution time of a candidate (a virtual-cluster run).
  using ActualRunner =
      std::function<double(const JobRequest&, const grid::Candidate&)>;

  /// Schedules the stream in submit order; returns one placement per job
  /// (jobs with no predictable candidate throw).
  std::vector<Placement> schedule(const std::vector<JobRequest>& jobs,
                                  const ActualRunner& runner);

  /// Completion time of the last job in the most recent schedule() call.
  double makespan() const { return makespan_; }
  /// Mean of (finish - submit) over the most recent schedule() call.
  double mean_turnaround() const { return mean_turnaround_; }

 private:
  struct Reservation {
    double start = 0.0;
    double end = 0.0;
    int nodes = 0;
  };

  /// Earliest time >= ready when `nodes` nodes of `site` are free for
  /// `duration` seconds, given existing reservations.
  double earliest_start(const std::string& site, int capacity, int nodes,
                        double ready, double duration) const;
  bool fits(const std::string& site, int capacity, int nodes, double start,
            double duration) const;
  double predict_exec(const JobRequest& job,
                      const grid::Candidate& candidate) const;

  const grid::GridCatalog* catalog_;
  SchedulingPolicy policy_;
  std::map<std::string, ScalingFactors> scalers_;
  std::map<std::string, std::vector<Reservation>> reservations_;
  std::size_t round_robin_cursor_ = 0;
  double makespan_ = 0.0;
  double mean_turnaround_ = 0.0;
};

}  // namespace fgp::core
