// predictor.h — the execution-time prediction model (paper §3).
//
//   T̂_disk = (ŝ/s)·(n/n̂)·t_d
//   T̂_net  = (ŝ/s)·(n/n̂)·(b/b̂)·t_n
//   T̂_comp =                               (no-communication)
//       (ŝ/s)·(c/ĉ)·t_c
//   T̂_comp =                               (reduction-communication)
//       (ŝ/s)·(c/ĉ)·(t_c − t_ro) + T̂_ro
//   T̂_comp =                               (global-reduction)
//       (ŝ/s)·(c/ĉ)·(t_c − t_ro − t_g) + T̂_ro + T̂_g
//   with T̂_ro = (ĉ−1)·(w·r̂ + l).
#pragma once

#include "core/classes.h"
#include "core/ipc_probe.h"
#include "core/profile.h"

namespace fgp::core {

enum class PredictionModel {
  NoCommunication,         ///< §3.3 opening: pure linear compute scaling
  ReductionCommunication,  ///< §3.3.1: models T_ro
  GlobalReduction,         ///< §3.3.2: models T_ro and T_g
};

struct PredictedTime {
  double disk = 0.0;
  double network = 0.0;
  double compute = 0.0;  ///< always compute_local + ro_comm + global_red
  /// Component split of `compute`, for residual reporting against a
  /// TimingBreakdown. Models that do not separate a term fold it into
  /// compute_local (e.g. NoCommunication puts everything there;
  /// ReductionCommunication leaves t_g inside the scaled parallel part).
  double compute_local = 0.0;
  double ro_comm = 0.0;
  double global_red = 0.0;
  double total() const { return disk + network + compute; }
};

struct PredictorOptions {
  PredictionModel model = PredictionModel::GlobalReduction;
  AppClasses classes;
  IpcParams ipc;  ///< measured on the *target* processing cluster
  /// When true, drop the n/n̂ term from the network predictor (paper: "if
  /// throughput does not increase with storage nodes, the term can be
  /// removed").
  bool network_throughput_scales_with_nodes = true;
};

class Predictor {
 public:
  Predictor(Profile profile, PredictorOptions options);

  /// Predicts component times for a target configuration on the same kind
  /// of hardware the profile was collected on.
  PredictedTime predict(const ProfileConfig& target) const;

  const Profile& profile() const { return profile_; }
  const PredictorOptions& options() const { return options_; }

 private:
  /// T̂_ro for the target: (ĉ-1)·(w·r̂ + l) summed over the profile's passes.
  double predict_t_ro(const ProfileConfig& target) const;

  Profile profile_;
  PredictorOptions options_;
};

const char* to_string(PredictionModel model);

}  // namespace fgp::core
