// cache_planner.h — choosing where to cache for multi-pass jobs.
//
// Paper §2.1 lists "Finding Non-local Caching Resources" as a resource-
// selection role: "if sufficient storage is not available at the site
// where computations are performed, data may be cached at a non-local
// site, i.e., at a location from which it can be accessed at a lower cost
// than the original repository" — but the paper's implementation does not
// cover it. This planner completes the design: it costs a multi-pass job
// under (a) no caching, (b) compute-local disk caching, (c) each candidate
// non-local cache site, using the same analytic machinery as the
// prediction model, and ranks the options.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "freeride/runtime.h"

namespace fgp::core {

/// One caching option's predicted per-pass costs.
struct CachePlan {
  freeride::CacheMode mode = freeride::CacheMode::None;
  std::string site_name;  ///< cache-site cluster name (NonLocalSite only)
  double first_pass_s = 0.0;
  double later_pass_s = 0.0;

  double total_s(int passes) const {
    return first_pass_s + static_cast<double>(passes - 1) * later_pass_s;
  }
};

/// What the planner needs to know about the job. Data-movement costs come
/// from the cluster/WAN specs; the per-pass processing time comes from a
/// profile run (it is identical under every caching option).
struct CachePlannerInputs {
  double dataset_bytes = 0.0;  ///< s (virtual)
  std::uint64_t chunks = 0;
  int data_nodes = 1;
  int compute_nodes = 1;
  sim::ClusterSpec data_cluster;
  sim::ClusterSpec compute_cluster;
  sim::WanSpec wan;  ///< repository -> compute pipe
  double compute_time_per_pass_s = 0.0;
  double local_cache_capacity_bytes = 1e18;  ///< per compute node
  bool charge_cache_write = true;
};

class CachePlanner {
 public:
  explicit CachePlanner(CachePlannerInputs inputs);

  /// Re-retrieve from the repository every pass.
  CachePlan plan_no_cache() const;

  /// Cache on the compute nodes' local disks; nullopt when the per-node
  /// share exceeds the local capacity.
  std::optional<CachePlan> plan_local_disk() const;

  /// Cache at a non-local site.
  CachePlan plan_site(const freeride::CacheSiteSetup& site) const;

  /// Every feasible option for a `passes`-pass job, cheapest first.
  std::vector<CachePlan> rank(
      int passes, std::span<const freeride::CacheSiteSetup> sites) const;

 private:
  double repository_pass_s() const;  ///< retrieval + movement from the repo

  CachePlannerInputs in_;
};

}  // namespace fgp::core
