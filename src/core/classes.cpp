#include "core/classes.h"

#include <cmath>
#include <vector>

#include "util/check.h"
#include "util/stats.h"

namespace fgp::core {

double estimate_object_bytes(RoSizeClass cls, const Profile& profile,
                             const ProfileConfig& target) {
  FGP_CHECK(profile.config.dataset_bytes > 0 && target.dataset_bytes > 0);
  switch (cls) {
    case RoSizeClass::Constant:
      return profile.object_bytes;
    case RoSizeClass::LinearWithData: {
      // Per-node object tracks local volume s/c.
      const double s_ratio =
          target.dataset_bytes / profile.config.dataset_bytes;
      const double c_ratio =
          static_cast<double>(profile.config.compute_nodes) /
          static_cast<double>(target.compute_nodes);
      return profile.object_bytes * s_ratio * c_ratio;
    }
  }
  throw util::Error("unknown RoSizeClass");
}

double estimate_global_time(GlobalReductionClass cls, const Profile& profile,
                            const ProfileConfig& target) {
  switch (cls) {
    case GlobalReductionClass::LinearConstant:
      return profile.t_g * static_cast<double>(target.compute_nodes) /
             static_cast<double>(profile.config.compute_nodes);
    case GlobalReductionClass::ConstantLinear:
      return profile.t_g * target.dataset_bytes /
             profile.config.dataset_bytes;
  }
  throw util::Error("unknown GlobalReductionClass");
}

namespace {

/// Fits the exponent e in y ~ x^e from all profile pairs where `x` varies
/// and every other driver is fixed. Returns false when no such pair exists.
bool fit_exponent(std::span<const Profile> profiles,
                  double (*x_of)(const Profile&),
                  double (*other_of)(const Profile&),
                  double (*y_of)(const Profile&), double* exponent) {
  std::vector<double> lx, ly;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = i + 1; j < profiles.size(); ++j) {
      const double xi = x_of(profiles[i]), xj = x_of(profiles[j]);
      const double oi = other_of(profiles[i]), oj = other_of(profiles[j]);
      if (xi == xj || oi != oj) continue;
      const double yi = y_of(profiles[i]), yj = y_of(profiles[j]);
      if (yi <= 0 || yj <= 0) continue;
      lx.push_back(std::log(xj) - std::log(xi));
      ly.push_back(std::log(yj) - std::log(yi));
    }
  }
  if (lx.empty()) return false;
  // Slope through the origin: e = sum(lx*ly)/sum(lx*lx).
  double num = 0, den = 0;
  for (std::size_t i = 0; i < lx.size(); ++i) {
    num += lx[i] * ly[i];
    den += lx[i] * lx[i];
  }
  *exponent = num / den;
  return true;
}

double size_of(const Profile& p) { return p.config.dataset_bytes; }
double nodes_of(const Profile& p) {
  return static_cast<double>(p.config.compute_nodes);
}
double r_of(const Profile& p) { return p.object_bytes; }
double tg_of(const Profile& p) { return p.t_g; }

}  // namespace

AppClasses detect_classes(std::span<const Profile> profiles) {
  FGP_CHECK_MSG(profiles.size() >= 2,
                "class detection needs at least two profiles");

  AppClasses out;

  // Reduction-object size: test how r responds to dataset size at fixed
  // node count, and to node count at fixed size.
  double e_rs = 0.0, e_rc = 0.0;
  const bool have_rs = fit_exponent(profiles, size_of, nodes_of, r_of, &e_rs);
  const bool have_rc = fit_exponent(profiles, nodes_of, size_of, r_of, &e_rc);
  FGP_CHECK_MSG(have_rs || have_rc,
                "profiles do not vary in dataset size or node count");
  // Linear class: r grows with s (exponent near 1) or shrinks with c
  // (exponent near -1). Constant class shows exponents near 0 on both.
  const bool linear_r = (have_rs && e_rs > 0.5) || (have_rc && e_rc < -0.5);
  out.ro = linear_r ? RoSizeClass::LinearWithData : RoSizeClass::Constant;

  // Global reduction time: linear-constant grows with c; constant-linear
  // grows with s.
  double e_gs = 0.0, e_gc = 0.0;
  const bool have_gs = fit_exponent(profiles, size_of, nodes_of, tg_of, &e_gs);
  const bool have_gc = fit_exponent(profiles, nodes_of, size_of, tg_of, &e_gc);
  if (have_gs && have_gc) {
    out.global = e_gs >= e_gc ? GlobalReductionClass::ConstantLinear
                              : GlobalReductionClass::LinearConstant;
  } else if (have_gs) {
    out.global = e_gs > 0.5 ? GlobalReductionClass::ConstantLinear
                            : GlobalReductionClass::LinearConstant;
  } else if (have_gc) {
    out.global = e_gc > 0.5 ? GlobalReductionClass::LinearConstant
                            : GlobalReductionClass::ConstantLinear;
  }
  return out;
}

const char* to_string(RoSizeClass cls) {
  switch (cls) {
    case RoSizeClass::Constant:
      return "constant";
    case RoSizeClass::LinearWithData:
      return "linear";
  }
  return "?";
}

const char* to_string(GlobalReductionClass cls) {
  switch (cls) {
    case GlobalReductionClass::LinearConstant:
      return "linear-constant";
    case GlobalReductionClass::ConstantLinear:
      return "constant-linear";
  }
  return "?";
}

}  // namespace fgp::core
