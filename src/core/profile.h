// profile.h — application profiles, the input to the prediction model.
//
// "Predictions have to be based on a profile, which is collected by
// executing the application on one dataset and one execution
// configuration" (paper §3.1). A profile records the configuration
// (n, c, s, b), the execution-time breakdown (t_d, t_n, t_c), the maximum
// reduction-object size r, the reduction-object communication time T_ro
// and the global reduction time T_g.
#pragma once

#include <string>

#include "freeride/runtime.h"

namespace fgp::core {

/// The knobs a configuration exposes to the model.
struct ProfileConfig {
  int data_nodes = 1;         ///< n
  int compute_nodes = 1;      ///< c
  int threads_per_node = 1;   ///< t — SMP threads per compute node
  double dataset_bytes = 0;   ///< s (virtual bytes)
  double bandwidth_Bps = 0;   ///< b (per-link repository->compute bandwidth)
  std::string data_cluster;    ///< cluster name hosting the data
  std::string compute_cluster; ///< cluster name doing the processing
};

/// Summary information extracted from one profile run.
struct Profile {
  std::string app;
  ProfileConfig config;
  double t_disk = 0.0;     ///< t_d
  double t_network = 0.0;  ///< t_n
  double t_compute = 0.0;  ///< t_c (includes t_ro and t_g)
  double t_ro = 0.0;       ///< reduction-object communication time
  double t_g = 0.0;        ///< global reduction time (merges + finalize)
  double object_bytes = 0.0;  ///< r: max reduction-object size
  int passes = 0;

  double total() const { return t_disk + t_network + t_compute; }
};

/// Collects profiles by running jobs on the virtual cluster.
class ProfileCollector {
 public:
  /// Runs `kernel` on `setup` and assembles the profile. A non-null `pool`
  /// is borrowed for the runtime's two-level reduction; the profile is
  /// bit-identical either way (DESIGN.md §11).
  static Profile collect(const freeride::JobSetup& setup,
                         freeride::ReductionKernel& kernel,
                         util::ThreadPool* pool = nullptr);

  /// Assembles a profile from an already-finished run.
  static Profile from_result(const freeride::JobSetup& setup,
                             const std::string& app,
                             const freeride::RunResult& result);
};

}  // namespace fgp::core
