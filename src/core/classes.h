// classes.h — application taxonomy for the compute-time sub-models.
//
// Paper §3.3.1: "almost all applications fall into one of the two
// classes" for reduction-object size — constant (k-means, k-NN) or linear
// (EM, vortex, defect; size tracks the node's data volume). Paper §3.3.2:
// global reduction time is either linear in node count and constant in
// data (linear-constant) or constant in node count and linear in data
// (constant-linear). "The appropriate predictor for a given application
// can either be selected by a user, or can be determined by analyzing
// multiple profile runs" — detect_classes implements the latter.
#pragma once

#include <span>

#include "core/profile.h"

namespace fgp::core {

enum class RoSizeClass {
  Constant,        ///< r independent of dataset size and node count
  LinearWithData,  ///< per-node r tracks the local data volume (s/c)
};

enum class GlobalReductionClass {
  LinearConstant,  ///< T_g linear in node count, constant in dataset size
  ConstantLinear,  ///< T_g constant in node count, linear in dataset size
};

struct AppClasses {
  RoSizeClass ro = RoSizeClass::Constant;
  GlobalReductionClass global = GlobalReductionClass::LinearConstant;
};

/// Estimates the reduction-object size r̂ for `target` from a profile.
double estimate_object_bytes(RoSizeClass cls, const Profile& profile,
                             const ProfileConfig& target);

/// Estimates the global reduction time T̂_g for `target` from a profile.
double estimate_global_time(GlobalReductionClass cls, const Profile& profile,
                            const ProfileConfig& target);

/// Determines both classes from two or more profile runs that differ in
/// dataset size and/or compute-node count. Throws util::Error when the
/// profiles do not vary enough to decide (all identical configs).
AppClasses detect_classes(std::span<const Profile> profiles);

const char* to_string(RoSizeClass cls);
const char* to_string(GlobalReductionClass cls);

}  // namespace fgp::core
