// calibrate.h — fitting virtual-machine parameters from real measurements.
//
// The virtual cluster charges time as t = flops/F + bytes/B per node. To
// model a *new* machine type, F and B can be fitted from wall-clock
// measurements of the real kernels (whose work counts are exact): run two
// or more kernels with different flop:byte mixes, time them, and solve the
// least-squares system. This is the practical bridge between the paper's
// "experimentally determined" scaling factors and the simulator's machine
// model — and it doubles as a validation that the two-parameter roofline
// form fits real kernels at all (see max_residual_fraction).
#pragma once

#include <span>

#include "freeride/reduction.h"
#include "repository/chunk.h"
#include "sim/machine.h"

namespace fgp::core {

/// One calibration point: the work a kernel reported and the wall-clock
/// seconds it actually took on the host.
struct CalibrationSample {
  sim::Work work;
  double seconds = 0.0;
};

struct CalibrationResult {
  double cpu_flops = 0.0;  ///< fitted F (flop/s)
  double mem_Bps = 0.0;    ///< fitted B (bytes/s)
  /// max |t_measured - t_fit| / t_measured over the samples — how well the
  /// two-parameter model explains the machine.
  double max_residual_fraction = 0.0;
};

/// Least-squares fit of t = flops/F + bytes/B. Needs >= 2 samples whose
/// flop:byte mixes differ (a rank-deficient system throws).
CalibrationResult calibrate_machine(std::span<const CalibrationSample> samples);

/// Measures one sample on the host: runs `kernel.process_chunk` over
/// `chunk` `repeats` times (fresh object each time) under a wall clock.
CalibrationSample measure_kernel_sample(freeride::ReductionKernel& kernel,
                                        const repository::Chunk& chunk,
                                        int repeats = 8);

}  // namespace fgp::core
