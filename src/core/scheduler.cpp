#include "core/scheduler.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/ipc_probe.h"
#include "util/check.h"

namespace fgp::core {

GridScheduler::GridScheduler(const grid::GridCatalog* catalog,
                             SchedulingPolicy policy,
                             std::map<std::string, ScalingFactors> scalers)
    : catalog_(catalog), policy_(policy), scalers_(std::move(scalers)) {
  FGP_CHECK_MSG(catalog_ != nullptr, "scheduler needs a grid catalog");
}

bool GridScheduler::fits(const std::string& site, int capacity, int nodes,
                         double start, double duration) const {
  const auto it = reservations_.find(site);
  if (it == reservations_.end()) return nodes <= capacity;
  // Peak concurrent usage within [start, start+duration) changes only at
  // reservation starts; checking those instants (plus `start`) suffices.
  std::vector<double> instants{start};
  for (const auto& r : it->second)
    if (r.start > start && r.start < start + duration)
      instants.push_back(r.start);
  for (const double t : instants) {
    int used = 0;
    for (const auto& r : it->second)
      if (r.start <= t && t < r.end) used += r.nodes;
    if (used + nodes > capacity) return false;
  }
  return true;
}

double GridScheduler::earliest_start(const std::string& site, int capacity,
                                     int nodes, double ready,
                                     double duration) const {
  FGP_CHECK_MSG(nodes <= capacity, "placement larger than the site");
  // Candidate start instants: the ready time and every reservation end.
  std::vector<double> candidates{ready};
  const auto it = reservations_.find(site);
  if (it != reservations_.end())
    for (const auto& r : it->second)
      if (r.end > ready) candidates.push_back(r.end);
  std::sort(candidates.begin(), candidates.end());
  for (const double t : candidates)
    if (fits(site, capacity, nodes, t, duration)) return t;
  FGP_CHECK_MSG(false, "no feasible start found (unreachable)");
  return 0.0;
}

double GridScheduler::predict_exec(const JobRequest& job,
                                   const grid::Candidate& candidate) const {
  const auto& site = catalog_->compute_site(candidate.compute_site);

  ProfileConfig target;
  target.data_nodes = candidate.replica.storage_nodes;
  target.compute_nodes = candidate.compute_nodes;
  target.dataset_bytes = job.dataset_bytes;
  target.bandwidth_Bps = candidate.wan.per_link_Bps;

  PredictorOptions opts;
  opts.model = PredictionModel::GlobalReduction;
  opts.classes = job.classes;

  if (site.cluster.name == job.profile.config.compute_cluster) {
    opts.ipc = measure_ipc(site.cluster);
    return Predictor(job.profile, opts).predict(target).total();
  }
  const auto it = scalers_.find(site.cluster.name);
  if (it == scalers_.end())
    return std::numeric_limits<double>::infinity();  // unpredictable
  opts.ipc = measure_ipc(site.cluster);
  return HeteroPredictor(Predictor(job.profile, opts), it->second)
      .predict(target)
      .total();
}

std::vector<Placement> GridScheduler::schedule(
    const std::vector<JobRequest>& jobs, const ActualRunner& runner) {
  reservations_.clear();
  round_robin_cursor_ = 0;
  makespan_ = 0.0;
  mean_turnaround_ = 0.0;

  std::vector<Placement> placements;
  double turnaround_sum = 0.0;

  for (const auto& job : jobs) {
    const auto candidates = catalog_->enumerate_candidates(job.dataset);
    FGP_CHECK_MSG(!candidates.empty(),
                  "no candidate for dataset '" << job.dataset << "'");

    struct Scored {
      grid::Candidate candidate;
      double predicted = 0.0;
      double start = 0.0;
      double completion = 0.0;
    };
    std::vector<Scored> scored;
    for (const auto& candidate : candidates) {
      const double predicted = predict_exec(job, candidate);
      if (!std::isfinite(predicted)) continue;
      const auto& site = catalog_->compute_site(candidate.compute_site);
      const double start =
          earliest_start(candidate.compute_site, site.available_nodes,
                         candidate.compute_nodes, job.submit_time_s,
                         predicted);
      scored.push_back({candidate, predicted, start, start + predicted});
    }
    FGP_CHECK_MSG(!scored.empty(),
                  "no predictable candidate for job '" << job.id << "'");

    const Scored* chosen = nullptr;
    switch (policy_) {
      case SchedulingPolicy::PredictedBest: {
        chosen = &*std::min_element(
            scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              return a.completion < b.completion;
            });
        break;
      }
      case SchedulingPolicy::RoundRobin: {
        chosen = &scored[round_robin_cursor_ % scored.size()];
        ++round_robin_cursor_;
        break;
      }
      case SchedulingPolicy::MaxNodes: {
        chosen = &*std::max_element(
            scored.begin(), scored.end(),
            [](const Scored& a, const Scored& b) {
              if (a.candidate.compute_nodes != b.candidate.compute_nodes)
                return a.candidate.compute_nodes < b.candidate.compute_nodes;
              return a.start > b.start;  // prefer the earlier start on ties
            });
        break;
      }
    }

    Placement placement;
    placement.job_id = job.id;
    placement.candidate = chosen->candidate;
    placement.predicted_exec_s = chosen->predicted;
    placement.actual_exec_s = runner(job, chosen->candidate);
    FGP_CHECK_MSG(placement.actual_exec_s > 0.0,
                  "runner returned non-positive execution time");
    // Reserve with the *actual* duration: the queue wait was computed with
    // the prediction, but reality occupies the nodes for the real time.
    placement.start_s = chosen->start;
    placement.finish_s = placement.start_s + placement.actual_exec_s;
    reservations_[chosen->candidate.compute_site].push_back(
        {placement.start_s, placement.finish_s,
         chosen->candidate.compute_nodes});

    makespan_ = std::max(makespan_, placement.finish_s);
    turnaround_sum += placement.finish_s - job.submit_time_s;
    placements.push_back(std::move(placement));
  }
  if (!placements.empty())
    mean_turnaround_ = turnaround_sum / static_cast<double>(placements.size());
  return placements;
}

}  // namespace fgp::core
