// ipc_probe.h — measuring the reduction-object communication parameters.
//
// The model's T_ro = w·r + l needs "experimentally determined bandwidth
// and latency for the target processing configuration" (paper §3.3.1).
// The probe times two different-sized ping messages over the target
// cluster's interconnect and solves for (w, l) — the virtual-cluster
// equivalent of an MPI ping-pong microbenchmark.
#pragma once

#include "sim/cluster.h"

namespace fgp::core {

struct IpcParams {
  double w = 0.0;  ///< seconds per byte (1 / effective bandwidth)
  double l = 0.0;  ///< per-message latency, seconds
};

/// Probes the cluster's interconnect with two message sizes and fits the
/// linear cost model through the measurements.
IpcParams measure_ipc(const sim::ClusterSpec& cluster);

}  // namespace fgp::core
