#include "core/residuals.h"

#include <utility>

namespace fgp::core {

obs::ResidualPoint make_residual_point(
    std::string label, const PredictedTime& predicted,
    const freeride::TimingBreakdown& observed) {
  obs::ResidualPoint point;
  point.label = std::move(label);
  point.predicted.disk = predicted.disk;
  point.predicted.network = predicted.network;
  point.predicted.compute_local = predicted.compute_local;
  point.predicted.ro_comm = predicted.ro_comm;
  point.predicted.global_red = predicted.global_red;
  point.observed.disk = observed.disk;
  point.observed.network = observed.network;
  point.observed.compute_local = observed.compute_local;
  point.observed.ro_comm = observed.ro_comm;
  point.observed.global_red = observed.global_red;
  return point;
}

}  // namespace fgp::core
