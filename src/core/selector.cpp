#include "core/selector.h"

#include <algorithm>

#include "util/check.h"

namespace fgp::core {

ResourceSelector::ResourceSelector(const grid::GridCatalog* catalog,
                                   Profile profile, PredictorOptions options,
                                   std::map<std::string, ScalingFactors> scalers)
    : catalog_(catalog),
      profile_(std::move(profile)),
      options_(options),
      scalers_(std::move(scalers)) {
  FGP_CHECK_MSG(catalog_ != nullptr, "selector needs a grid catalog");
}

std::vector<RankedCandidate> ResourceSelector::rank(
    const std::string& dataset, double dataset_bytes) const {
  std::vector<RankedCandidate> out;
  for (const auto& candidate : catalog_->enumerate_candidates(dataset)) {
    const auto& site = catalog_->compute_site(candidate.compute_site);

    ProfileConfig target;
    target.data_nodes = candidate.replica.storage_nodes;
    target.compute_nodes = candidate.compute_nodes;
    target.dataset_bytes = dataset_bytes;
    target.bandwidth_Bps = candidate.wan.per_link_Bps;
    target.data_cluster =
        catalog_->repository_site(candidate.replica.repository).cluster.name;
    target.compute_cluster = site.cluster.name;

    RankedCandidate rc;
    rc.candidate = candidate;
    if (site.cluster.name == profile_.config.compute_cluster) {
      // Same hardware as the profile: measure IPC there and predict.
      PredictorOptions opts = options_;
      opts.ipc = measure_ipc(site.cluster);
      rc.predicted = Predictor(profile_, opts).predict(target);
    } else {
      const auto it = scalers_.find(site.cluster.name);
      if (it == scalers_.end()) continue;  // no way to predict this cluster
      rc.predicted = HeteroPredictor(Predictor(profile_, options_), it->second)
                         .predict(target);
      rc.used_hetero_scaling = true;
    }
    out.push_back(std::move(rc));
  }
  std::sort(out.begin(), out.end(),
            [](const RankedCandidate& a, const RankedCandidate& b) {
              return a.predicted.total() < b.predicted.total();
            });
  return out;
}

RankedCandidate ResourceSelector::best(const std::string& dataset,
                                       double dataset_bytes) const {
  auto ranked = rank(dataset, dataset_bytes);
  FGP_CHECK_MSG(!ranked.empty(),
                "no predictable candidate for dataset '" << dataset << "'");
  return ranked.front();
}

}  // namespace fgp::core
