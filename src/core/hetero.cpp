#include "core/hetero.h"

#include "util/check.h"
#include "util/stats.h"

namespace fgp::core {

ScalingFactors compute_scaling_factors(std::span<const Profile> on_a,
                                       std::span<const Profile> on_b) {
  FGP_CHECK_MSG(!on_a.empty(), "need at least one representative profile");
  util::Accumulator disk, network, compute;
  for (const auto& pa : on_a) {
    const Profile* pb = nullptr;
    for (const auto& candidate : on_b) {
      if (candidate.app == pa.app) {
        pb = &candidate;
        break;
      }
    }
    FGP_CHECK_MSG(pb != nullptr,
                  "no cluster-B profile for app '" << pa.app << "'");
    FGP_CHECK_MSG(pa.config.data_nodes == pb->config.data_nodes &&
                      pa.config.compute_nodes == pb->config.compute_nodes &&
                      pa.config.dataset_bytes == pb->config.dataset_bytes,
                  "scaling factors need identical configurations (app '"
                      << pa.app << "')");
    FGP_CHECK_MSG(pa.t_disk > 0 && pa.t_network > 0 && pa.t_compute > 0,
                  "degenerate cluster-A profile for app '" << pa.app << "'");
    disk.add(pb->t_disk / pa.t_disk);
    network.add(pb->t_network / pa.t_network);
    compute.add(pb->t_compute / pa.t_compute);
  }
  return {disk.mean(), network.mean(), compute.mean()};
}

PredictedTime HeteroPredictor::predict(const ProfileConfig& target) const {
  // First predict on an identical configuration on cluster A, then scale
  // each component (paper §3.4).
  const PredictedTime on_a = base_.predict(target);
  PredictedTime out;
  out.disk = factors_.disk * on_a.disk;
  out.network = factors_.network * on_a.network;
  out.compute = factors_.compute * on_a.compute;
  return out;
}

}  // namespace fgp::core
