#include "core/predictor.h"

#include "util/check.h"

namespace fgp::core {

Predictor::Predictor(Profile profile, PredictorOptions options)
    : profile_(std::move(profile)), options_(options) {
  FGP_CHECK_MSG(profile_.config.dataset_bytes > 0,
                "profile has empty dataset");
  FGP_CHECK_MSG(profile_.config.data_nodes > 0 &&
                    profile_.config.compute_nodes > 0,
                "profile has invalid node counts");
  FGP_CHECK_MSG(profile_.config.bandwidth_Bps > 0,
                "profile has no bandwidth information");
  FGP_CHECK_MSG(profile_.t_compute >= profile_.t_ro + profile_.t_g - 1e-12,
                "profile breakdown inconsistent: t_c < t_ro + t_g");
}

double Predictor::predict_t_ro(const ProfileConfig& target) const {
  // T̂_ro = (ĉ-1)·(w·r̂ + l) per pass; the profile's t_ro and t_g are sums
  // over all passes, so the estimate is scaled by the pass count (the
  // model assumes the target runs the same number of passes — true for
  // deterministic iterative reductions on the same dataset).
  const double r_hat =
      estimate_object_bytes(options_.classes.ro, profile_, target);
  return static_cast<double>(target.compute_nodes - 1) *
         (options_.ipc.w * r_hat + options_.ipc.l) *
         static_cast<double>(std::max(1, profile_.passes));
}

PredictedTime Predictor::predict(const ProfileConfig& target) const {
  FGP_CHECK_MSG(target.data_nodes > 0 && target.compute_nodes > 0 &&
                    target.threads_per_node > 0,
                "target has invalid node counts");
  FGP_CHECK_MSG(target.dataset_bytes > 0, "target has empty dataset");
  FGP_CHECK_MSG(target.bandwidth_Bps > 0, "target has no bandwidth");
  FGP_CHECK_MSG(target.compute_nodes >= target.data_nodes,
                "FREERIDE-G requires compute_nodes >= data_nodes");

  const auto& p = profile_;
  const double s_ratio = target.dataset_bytes / p.config.dataset_bytes;
  const double n_ratio = static_cast<double>(p.config.data_nodes) /
                         static_cast<double>(target.data_nodes);
  // Effective compute parallelism is nodes x SMP threads (the parallel
  // part of t_c scales with both; the serialized T_ro/T_g terms stay
  // node-based since one reduction object is gathered per *node*).
  const double c_ratio =
      static_cast<double>(p.config.compute_nodes *
                          p.config.threads_per_node) /
      static_cast<double>(target.compute_nodes * target.threads_per_node);
  const double b_ratio = p.config.bandwidth_Bps / target.bandwidth_Bps;

  PredictedTime out;
  out.disk = s_ratio * n_ratio * p.t_disk;
  out.network = s_ratio * b_ratio * p.t_network *
                (options_.network_throughput_scales_with_nodes ? n_ratio : 1.0);

  switch (options_.model) {
    case PredictionModel::NoCommunication: {
      out.compute_local = s_ratio * c_ratio * p.t_compute;
      break;
    }
    case PredictionModel::ReductionCommunication: {
      const double parallel = p.t_compute - p.t_ro;  // T' (paper §3.3.1)
      out.compute_local = s_ratio * c_ratio * parallel;
      out.ro_comm = predict_t_ro(target);
      break;
    }
    case PredictionModel::GlobalReduction: {
      const double parallel = p.t_compute - p.t_ro - p.t_g;  // T'' (§3.3.2)
      out.compute_local = s_ratio * c_ratio * parallel;
      out.ro_comm = predict_t_ro(target);
      out.global_red = estimate_global_time(options_.classes.global, p, target);
      break;
    }
  }
  out.compute = out.compute_local + out.ro_comm + out.global_red;
  return out;
}

const char* to_string(PredictionModel model) {
  switch (model) {
    case PredictionModel::NoCommunication:
      return "no communication";
    case PredictionModel::ReductionCommunication:
      return "reduction communication";
    case PredictionModel::GlobalReduction:
      return "global reduction";
  }
  return "?";
}

}  // namespace fgp::core
