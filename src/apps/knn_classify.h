// knn_classify.h — the k-nearest-neighbour *classifier* (paper §4.3: "the
// k-nearest neighbor classifier is based on learning by analogy").
//
// Training samples are labeled points distributed across nodes; each node
// finds the k nearest labeled neighbours of every query locally; the
// global reduction merges the k-lists and takes the majority vote. The
// reduction object (m queries x k (distance, label) pairs) is constant
// size; the global reduction is linear-constant.
#pragma once

#include <memory>
#include <vector>

#include "freeride/reduction.h"
#include "repository/dataset.h"

namespace fgp::apps {

/// Per-query sorted k-lists of (squared distance, label).
class KnnClassifyObject final : public freeride::ReductionObject {
 public:
  KnnClassifyObject() = default;
  KnnClassifyObject(int num_queries, int k);

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  /// Inserts a labeled candidate for query q; keeps the list sorted.
  void insert(std::size_t q, double dist, std::int32_t label);
  double kth_distance(std::size_t q) const;

  int num_queries = 0;
  int k = 0;
  std::vector<double> dists;        ///< [m x k], ascending per query
  std::vector<std::int32_t> labels; ///< [m x k]
  /// Filled by the global reduction: the majority-vote class per query.
  std::vector<std::int32_t> predicted;
};

struct KnnClassifyParams {
  std::vector<double> queries;  ///< row-major [m x dim] (features only)
  int k = 8;
  int dim = 8;  ///< feature dimension; payload rows carry dim+1 doubles
};

class KnnClassifyKernel final : public freeride::ReductionKernel {
 public:
  explicit KnnClassifyKernel(KnnClassifyParams params);

  std::string name() const override { return "knn-classify"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  bool reduction_object_scales_with_data() const override { return false; }

  int num_queries() const;

 private:
  KnnClassifyParams params_;
};

/// Serial reference: the majority label among the exact k nearest labeled
/// points (rows of dim+1 doubles) for one query.
std::int32_t knn_classify_reference(const std::vector<double>& rows, int dim,
                                    const double* query, int k);

}  // namespace fgp::apps
