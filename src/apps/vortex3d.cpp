#include "apps/vortex3d.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "util/simd.h"
#include "util/union_find.h"

namespace fgp::apps {

namespace {

/// Curl detection over one interior row (z, y): the six stencil rows are
/// hoisted to raw pointers so the inner x loop streams contiguously. The
/// per-cell arithmetic is the same central-difference curl as the scalar
/// version (same operand order, so marks are bit-identical).
void mark_curl_row(const datagen::Vec3f* cells, std::uint32_t stored_z0,
                   std::uint32_t ny, std::uint32_t nx, std::uint32_t z,
                   std::uint32_t y, double threshold, std::int8_t* mrow) {
  const std::size_t plane = static_cast<std::size_t>(ny) * nx;
  const datagen::Vec3f* mid =
      cells + static_cast<std::size_t>(z - stored_z0) * plane +
      static_cast<std::size_t>(y) * nx;
  const datagen::Vec3f* ym = mid - nx;
  const datagen::Vec3f* yp = mid + nx;
  const datagen::Vec3f* zm = mid - plane;
  const datagen::Vec3f* zp = mid + plane;
  for (std::uint32_t x = 1; x + 1 < nx; ++x) {
    const double dwdy = 0.5 * (yp[x].w - ym[x].w);
    const double dvdz = 0.5 * (zp[x].v - zm[x].v);
    const double dudz = 0.5 * (zp[x].u - zm[x].u);
    const double dwdx = 0.5 * (mid[x + 1].w - mid[x - 1].w);
    const double dvdx = 0.5 * (mid[x + 1].v - mid[x - 1].v);
    const double dudy = 0.5 * (yp[x].u - ym[x].u);
    const double ox = dwdy - dvdz;
    const double oy = dudz - dwdx;
    const double oz = dvdx - dudy;
    const double mag = std::sqrt(ox * ox + oy * oy + oz * oz);
    if (mag > threshold) mrow[x] = static_cast<std::int8_t>(oz >= 0.0 ? 1 : -1);
  }
}

std::uint64_t cell_key(std::int64_t z, std::int64_t y, std::int64_t x) {
  return (static_cast<std::uint64_t>(z & 0xFFFFF) << 40) |
         (static_cast<std::uint64_t>(y & 0xFFFFF) << 20) |
         static_cast<std::uint64_t>(x & 0xFFFFF);
}

struct Accum3d {
  std::int32_t sign = 0;
  std::uint64_t cells = 0;
  double sum_x = 0.0, sum_y = 0.0, sum_z = 0.0;
};

std::vector<Vortex3d> finalize(std::vector<Accum3d> accums,
                               std::uint64_t min_cells) {
  std::vector<Vortex3d> out;
  for (const auto& a : accums) {
    if (a.cells < min_cells) continue;
    Vortex3d v;
    v.cells = a.cells;
    v.sign = a.sign;
    v.cx = a.sum_x / static_cast<double>(a.cells);
    v.cy = a.sum_y / static_cast<double>(a.cells);
    v.cz = a.sum_z / static_cast<double>(a.cells);
    out.push_back(v);
  }
  std::sort(out.begin(), out.end(), [](const Vortex3d& a, const Vortex3d& b) {
    if (a.cells != b.cells) return a.cells > b.cells;
    if (a.cz != b.cz) return a.cz < b.cz;
    if (a.cy != b.cy) return a.cy < b.cy;
    return a.cx < b.cx;
  });
  return out;
}

/// Shared by the kernel and the reference: marks vortical cells of the
/// owned planes [z_lo, z_hi) and runs the slab-local union-find. `cells`
/// is the stored [stored_planes][ny][nx] grid; the reference passes the
/// whole reassembled volume with stored_z0 = 0.
std::vector<RegionFragment3d> aggregate_slab(
    const datagen::Vec3f* cells, std::uint32_t stored_z0, std::uint32_t z_lo,
    std::uint32_t z_hi, std::uint32_t ny, std::uint32_t nx, std::uint32_t nz,
    double threshold) {
  const std::uint32_t planes = z_hi - z_lo;
  const std::size_t plane_cells = static_cast<std::size_t>(ny) * nx;
  std::vector<std::int8_t> mark(static_cast<std::size_t>(planes) *
                                    plane_cells,
                                0);
  for (std::uint32_t z = z_lo; z < z_hi; ++z) {
    if (z == 0 || z + 1 >= nz) continue;
    for (std::uint32_t y = 1; y + 1 < ny; ++y) {
      std::int8_t* mrow = mark.data() +
                          static_cast<std::size_t>(z - z_lo) * plane_cells +
                          static_cast<std::size_t>(y) * nx;
      mark_curl_row(cells, stored_z0, ny, nx, z, y, threshold, mrow);
    }
  }

  // Marks are sparse; both sweeps skip empty 8-cell groups with one
  // 64-bit load.
  util::UnionFind uf(mark.size());
  auto idx_of = [&](std::uint32_t z, std::uint32_t y, std::uint32_t x) {
    return static_cast<std::size_t>(z - z_lo) * plane_cells +
           static_cast<std::size_t>(y) * nx + x;
  };
  for (std::uint32_t z = z_lo; z < z_hi; ++z)
    for (std::uint32_t y = 0; y < ny; ++y)
      for (std::uint32_t x = 0; x < nx;) {
        const std::size_t i = idx_of(z, y, x);
        if (x + 8 <= nx && util::simd::all_bytes_equal8(mark.data() + i, 0)) {
          x += 8;
          continue;
        }
        if (mark[i] != 0) {
          if (x + 1 < nx && mark[i + 1] == mark[i]) uf.unite(i, i + 1);
          if (y + 1 < ny && mark[i + nx] == mark[i]) uf.unite(i, i + nx);
          if (z + 1 < z_hi && mark[i + plane_cells] == mark[i])
            uf.unite(i, i + plane_cells);
        }
        ++x;
      }

  std::unordered_map<std::size_t, std::size_t> root_to_fragment;
  std::vector<RegionFragment3d> fragments;
  for (std::uint32_t z = z_lo; z < z_hi; ++z)
    for (std::uint32_t y = 0; y < ny; ++y)
      for (std::uint32_t x = 0; x < nx;) {
        const std::size_t i = idx_of(z, y, x);
        if (x + 8 <= nx && util::simd::all_bytes_equal8(mark.data() + i, 0)) {
          x += 8;
          continue;
        }
        if (mark[i] == 0) {
          ++x;
          continue;
        }
        const std::size_t root = uf.find(i);
        auto [it, inserted] =
            root_to_fragment.try_emplace(root, fragments.size());
        if (inserted) {
          RegionFragment3d f;
          f.sign = mark[i];
          fragments.push_back(std::move(f));
        }
        RegionFragment3d& f = fragments[it->second];
        f.cells += 1;
        f.sum_x += x;
        f.sum_y += y;
        f.sum_z += z;
        if (z == z_lo || z + 1 == z_hi)
          f.boundary.push_back({static_cast<std::int32_t>(z),
                                static_cast<std::int32_t>(y),
                                static_cast<std::int32_t>(x)});
        ++x;
      }
  return fragments;
}

/// Join fragments whose boundary cells are face-adjacent across planes,
/// then de-noise and sort.
std::vector<Vortex3d> join_and_finalize(
    const std::vector<RegionFragment3d>& fragments, std::uint64_t min_cells,
    double* boundary_cells_out) {
  std::unordered_map<std::uint64_t, std::size_t> owner;
  double boundary_cells = 0.0;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    for (const auto& bc : fragments[i].boundary) {
      owner.emplace(cell_key(bc.z, bc.y, bc.x), i);
      boundary_cells += 1.0;
    }
  }
  util::UnionFind uf(fragments.size());
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    for (const auto& bc : fragments[i].boundary) {
      const auto it = owner.find(cell_key(bc.z + 1, bc.y, bc.x));
      if (it != owner.end() && it->second != i &&
          fragments[it->second].sign == fragments[i].sign)
        uf.unite(i, it->second);
    }
  }
  std::unordered_map<std::size_t, std::size_t> root_to_accum;
  std::vector<Accum3d> accums;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto [it, inserted] = root_to_accum.try_emplace(root, accums.size());
    if (inserted) {
      Accum3d a;
      a.sign = fragments[i].sign;
      accums.push_back(a);
    }
    Accum3d& a = accums[it->second];
    a.cells += fragments[i].cells;
    a.sum_x += fragments[i].sum_x;
    a.sum_y += fragments[i].sum_y;
    a.sum_z += fragments[i].sum_z;
  }
  if (boundary_cells_out) *boundary_cells_out = boundary_cells;
  return finalize(std::move(accums), min_cells);
}

}  // namespace

void Vortex3dObject::serialize(util::ByteWriter& w) const {
  w.put_u64(fragments.size());
  for (const auto& f : fragments) {
    w.put<std::int32_t>(f.sign);
    w.put_u64(f.cells);
    w.put_f64(f.sum_x);
    w.put_f64(f.sum_y);
    w.put_f64(f.sum_z);
    w.put_vector(f.boundary);
  }
  w.put_u64(vortices.size());
  for (const auto& v : vortices) {
    w.put_f64(v.cx);
    w.put_f64(v.cy);
    w.put_f64(v.cz);
    w.put_u64(v.cells);
    w.put<std::int32_t>(v.sign);
  }
}

void Vortex3dObject::deserialize(util::ByteReader& r) {
  fragments.clear();
  vortices.clear();
  const std::uint64_t nf = r.get_count();
  fragments.reserve(nf);
  for (std::uint64_t i = 0; i < nf; ++i) {
    RegionFragment3d f;
    f.sign = r.get<std::int32_t>();
    f.cells = r.get_u64();
    f.sum_x = r.get_f64();
    f.sum_y = r.get_f64();
    f.sum_z = r.get_f64();
    f.boundary = r.get_vector<BoundaryCell3d>();
    fragments.push_back(std::move(f));
  }
  const std::uint64_t nv = r.get_count();
  vortices.reserve(nv);
  for (std::uint64_t i = 0; i < nv; ++i) {
    Vortex3d v;
    v.cx = r.get_f64();
    v.cy = r.get_f64();
    v.cz = r.get_f64();
    v.cells = r.get_u64();
    v.sign = r.get<std::int32_t>();
    vortices.push_back(v);
  }
}

Vortex3dKernel::Vortex3dKernel(Vortex3dParams params) : params_(params) {
  FGP_CHECK(params_.vorticity_threshold > 0.0);
}

std::unique_ptr<freeride::ReductionObject> Vortex3dKernel::create_object()
    const {
  return std::make_unique<Vortex3dObject>();
}

sim::Work Vortex3dKernel::process_chunk(const repository::Chunk& chunk,
                                        freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<Vortex3dObject&>(obj);
  const auto view = datagen::parse_volume_chunk(chunk);
  const auto& h = view.header;

  auto fragments = aggregate_slab(view.cells.data(), h.stored_z0, h.z0,
                                  h.z0 + h.planes, h.ny, h.nx, h.nz,
                                  params_.vorticity_threshold);
  for (auto& f : fragments) o.fragments.push_back(std::move(f));

  sim::Work w;
  w.flops = static_cast<double>(h.planes) * h.ny * h.nx * 30.0;
  w.bytes = static_cast<double>(view.cells.size()) * sizeof(datagen::Vec3f);
  return w;
}

sim::Work Vortex3dKernel::merge(freeride::ReductionObject& into,
                                const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<Vortex3dObject&>(into);
  const auto& b = dynamic_cast<const Vortex3dObject&>(other);
  double moved = 0.0;
  for (const auto& f : b.fragments) {
    moved += static_cast<double>(sizeof(RegionFragment3d) +
                                 f.boundary.size() * sizeof(BoundaryCell3d));
    a.fragments.push_back(f);
  }
  sim::Work w;
  w.flops = static_cast<double>(b.fragments.size()) * 4.0;
  w.bytes = moved * 2.0;
  return w;
}

sim::Work Vortex3dKernel::global_reduce(freeride::ReductionObject& merged,
                                        bool& more_passes) {
  auto& o = dynamic_cast<Vortex3dObject&>(merged);
  more_passes = false;
  double boundary_cells = 0.0;
  o.vortices = join_and_finalize(o.fragments, params_.min_cells,
                                 &boundary_cells);
  sim::Work w;
  w.flops =
      static_cast<double>(o.fragments.size()) * 8.0 + boundary_cells * 4.0;
  w.bytes = static_cast<double>(o.fragments.size()) *
                sizeof(RegionFragment3d) +
            boundary_cells * sizeof(BoundaryCell3d) * 2.0;
  return w;
}

std::vector<Vortex3d> vortex3d_reference(const datagen::Flow3dDataset& flow,
                                         const Vortex3dParams& params) {
  const std::uint32_t nx = static_cast<std::uint32_t>(flow.nx);
  const std::uint32_t ny = static_cast<std::uint32_t>(flow.ny);
  const std::uint32_t nz = static_cast<std::uint32_t>(flow.nz);

  // Reassemble the volume from the owned planes of every chunk.
  std::vector<datagen::Vec3f> volume(static_cast<std::size_t>(nx) * ny * nz);
  for (const auto& chunk : flow.dataset.chunks()) {
    const auto view = datagen::parse_volume_chunk(chunk);
    for (std::uint32_t p = 0; p < view.header.planes; ++p) {
      const std::uint32_t gz = view.header.z0 + p;
      for (std::uint32_t y = 0; y < ny; ++y)
        for (std::uint32_t x = 0; x < nx; ++x)
          volume[(static_cast<std::size_t>(gz) * ny + y) * nx + x] =
              view.at(gz, y, x);
    }
  }
  // One "slab" covering the whole volume: the same aggregation code path
  // (and the same mark_curl_row arithmetic) as the kernel.
  const auto fragments = aggregate_slab(volume.data(), 0, 0, nz, ny, nx, nz,
                                        params.vorticity_threshold);
  return join_and_finalize(fragments, params.min_cells, nullptr);
}

}  // namespace fgp::apps
