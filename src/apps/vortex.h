// vortex.h — feature-mining vortex detection on the FREERIDE-G reduction
// API (paper §4.4, after Machiraju et al.).
//
// Pipeline per the paper: *detection* marks individual grid points as
// vortical (here: discrete vorticity above a threshold — the halo rows in
// each chunk make the stencil communication-free), *classification*
// assigns the rotation sense, *aggregation* grows connected regions
// locally, and the *global combination* joins region fragments that span
// partition boundaries, then de-noises and sorts the vortices.
//
// The reduction object carries every locally detected region fragment, so
// its size tracks the local data volume — the paper's "linear object size"
// class — and the join/denoise global reduction is "constant-linear".
#pragma once

#include <memory>
#include <vector>

#include "datagen/flowfield.h"
#include "freeride/reduction.h"

namespace fgp::apps {

/// A boundary cell of a region fragment: a vortical cell lying on the
/// first or last owned row of its band (candidates for cross-band joins).
struct BoundaryCell {
  std::int32_t row = 0;
  std::int32_t x = 0;
};

/// A connected vortical region fragment local to one chunk band.
struct RegionFragment {
  std::int32_t sign = 0;  ///< rotation sense: +1 or -1
  std::uint64_t cells = 0;
  double sum_x = 0.0;  ///< coordinate sums for the centroid
  double sum_y = 0.0;
  std::vector<BoundaryCell> boundary;
};

/// A finished vortex after the global combination.
struct Vortex {
  double cx = 0.0;
  double cy = 0.0;
  std::uint64_t cells = 0;
  std::int32_t sign = 0;
};

class VortexObject final : public freeride::ReductionObject {
 public:
  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  std::vector<RegionFragment> fragments;
  /// Filled by the global reduction: de-noised vortices, largest first.
  std::vector<Vortex> vortices;
};

struct VortexParams {
  double vorticity_threshold = 0.8;
  std::uint64_t min_cells = 8;  ///< de-noising: smaller regions are dropped
};

class VortexKernel final : public freeride::ReductionKernel {
 public:
  explicit VortexKernel(VortexParams params);

  std::string name() const override { return "vortex"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  bool reduction_object_scales_with_data() const override { return true; }

 private:
  VortexParams params_;
};

/// Serial reference: detection over the full reassembled field with a
/// single global union-find. Returns de-noised vortices, largest first.
std::vector<Vortex> vortex_reference(const datagen::FlowDataset& flow,
                                     const VortexParams& params);

}  // namespace fgp::apps
