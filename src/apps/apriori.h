// apriori.h — apriori association mining on the FREERIDE-G reduction API.
//
// Paper §2.2 names apriori as one of the "popular algorithms" whose
// processing structure is a generalized reduction. The classic level-wise
// algorithm maps onto the middleware as one pass per itemset length: the
// master broadcasts the candidate set C_k, every node counts supports of
// its local transactions into the reduction object (a counts vector
// aligned with C_k), the global reduction filters by minimum support and
// generates C_{k+1} by join + downward-closure pruning, and the loop ends
// when no candidates survive. A genuinely multi-pass application whose
// reduction-object size varies per pass but is independent of dataset
// size and node count (constant class / linear-constant global class).
#pragma once

#include <memory>
#include <vector>

#include "datagen/transactions.h"
#include "freeride/reduction.h"

namespace fgp::apps {

/// Reduction object: one support counter per current candidate.
class AprioriObject final : public freeride::ReductionObject {
 public:
  AprioriObject() = default;
  explicit AprioriObject(std::size_t candidates) : counts(candidates) {}

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  std::vector<std::uint64_t> counts;
  std::uint64_t transactions = 0;
};

/// A frequent itemset with its absolute support.
struct FrequentItemset {
  datagen::Itemset items;
  std::uint64_t support = 0;
};

struct AprioriParams {
  datagen::Item num_items = 0;  ///< catalogue size (level-1 candidates)
  double min_support = 0.08;    ///< fraction of transactions
  int max_level = 4;            ///< longest itemset mined
};

class AprioriKernel final : public freeride::ReductionKernel {
 public:
  explicit AprioriKernel(AprioriParams params);

  std::string name() const override { return "apriori"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  double broadcast_bytes() const override;
  bool reduction_object_scales_with_data() const override { return false; }

  /// All frequent itemsets found so far, level by level, lexicographic
  /// within a level.
  const std::vector<FrequentItemset>& frequent_itemsets() const {
    return frequent_;
  }
  int level() const { return level_; }
  const std::vector<datagen::Itemset>& candidates() const {
    return candidates_;
  }

 private:
  AprioriParams params_;
  int level_ = 1;
  std::vector<datagen::Itemset> candidates_;
  std::vector<FrequentItemset> frequent_;
};

/// Candidate generation: joins frequent k-itemsets sharing a (k-1)-prefix
/// and prunes candidates with an infrequent k-subset (downward closure).
/// Exposed for testing.
std::vector<datagen::Itemset> apriori_generate_candidates(
    const std::vector<datagen::Itemset>& frequent_level);

/// Serial reference: exhaustive subset counting up to `max_level`.
std::vector<FrequentItemset> apriori_reference(
    const datagen::TransactionsDataset& data, double min_support,
    int max_level);

}  // namespace fgp::apps
