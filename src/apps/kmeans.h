// kmeans.h — k-means clustering on the FREERIDE-G reduction API (paper §4.1).
//
// Local reduction: assign each point to its nearest centre and accumulate
// per-cluster coordinate sums and counts. Global reduction: recompute
// centres from the merged sums. The reduction object (k centres' sums +
// counts) has *constant* size — the paper's "constant reduction object
// size" class — and the global reduction scales with the node count but
// not the data ("linear-constant" class).
#pragma once

#include <memory>
#include <vector>

#include "freeride/reduction.h"
#include "repository/dataset.h"

namespace fgp::apps {

/// Reduction object: per-cluster coordinate sums, member counts, and the
/// summed squared distance (the k-means objective).
class KMeansObject final : public freeride::ReductionObject {
 public:
  KMeansObject() = default;
  KMeansObject(int k, int dim) : sums_(static_cast<std::size_t>(k) * dim),
                                 counts_(static_cast<std::size_t>(k)) {}

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
  double sse = 0.0;
};

struct KMeansParams {
  int k = 8;
  int dim = 8;
  std::vector<double> initial_centers;  ///< row-major [k x dim]
  double tol = 1e-4;   ///< centre-shift convergence threshold
  int fixed_passes = 0;  ///< >0: run exactly this many passes (benches)
};

class KMeansKernel final : public freeride::ReductionKernel {
 public:
  explicit KMeansKernel(KMeansParams params);

  std::string name() const override { return "kmeans"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  double broadcast_bytes() const override;
  bool reduction_object_scales_with_data() const override { return false; }

  const std::vector<double>& centers() const { return centers_; }
  const std::vector<double>& objective_history() const { return sse_history_; }
  int passes_run() const { return passes_run_; }

 private:
  KMeansParams params_;
  std::vector<double> centers_;
  std::vector<double> sse_history_;
  int passes_run_ = 0;
};

/// Deterministic initial centres: the first k points of the dataset.
std::vector<double> initial_centers_from_dataset(
    const repository::ChunkedDataset& ds, int k, int dim);

/// Serial reference implementation (tests compare the parallel runtime's
/// result against this). Returns final centres; `sse_history` receives the
/// objective after every pass.
std::vector<double> kmeans_reference(const std::vector<double>& points,
                                     int dim, int k,
                                     std::vector<double> centers, double tol,
                                     int max_passes,
                                     std::vector<double>* sse_history);

}  // namespace fgp::apps
