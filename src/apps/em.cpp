#include "apps/em.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/simd.h"

namespace fgp::apps {

namespace {

constexpr double kLog2Pi = 1.8378770664093453;
constexpr double kVarFloor = 1e-6;

/// Per-pass E-step coefficients. The per-component log-normalizer and the
/// inverse variances depend only on the pass parameters, so hoisting them
/// out of the per-point loop removes g*d std::log calls (the dominant cost
/// of the scalar E-step) and turns the remaining quadratic form into a
/// blocked multiply-add the compiler vectorizes.
struct EStepCoefs {
  std::vector<double> inv_var;   ///< [g x d] 1 / var
  std::vector<double> log_norm;  ///< [g] log w_c - (logdet_c + d log 2pi)/2
};

EStepCoefs estep_coefs(std::size_t d, std::size_t g,
                       const std::vector<double>& vars,
                       const std::vector<double>& weights) {
  EStepCoefs coefs;
  coefs.inv_var.resize(g * d);
  coefs.log_norm.resize(g);
  for (std::size_t c = 0; c < g; ++c) {
    double logdet = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double var = vars[c * d + j];
      coefs.inv_var[c * d + j] = 1.0 / var;
      logdet += std::log(var);
    }
    coefs.log_norm[c] = std::log(weights[c]) -
                        0.5 * (logdet + static_cast<double>(d) * kLog2Pi);
  }
  return coefs;
}

/// E-step for one point: fills `logp[c]` with log(w_c * N(x | mu_c, var_c))
/// and returns the log of their sum (the point's log-likelihood).
double point_log_densities(const double* x, std::size_t d, std::size_t g,
                           const std::vector<double>& means,
                           const EStepCoefs& coefs, std::vector<double>& logp) {
  for (std::size_t c = 0; c < g; ++c) {
    const double quad = util::simd::weighted_squared_distance(
        x, means.data() + c * d, coefs.inv_var.data() + c * d, d);
    logp[c] = coefs.log_norm[c] - 0.5 * quad;
  }
  const double mx = *std::max_element(logp.begin(), logp.begin() + g);
  double sum = 0.0;
  for (std::size_t c = 0; c < g; ++c) sum += std::exp(logp[c] - mx);
  return mx + std::log(sum);
}

}  // namespace

void EMObject::serialize(util::ByteWriter& w) const {
  w.put_vector(resp);
  w.put_vector(sum_x);
  w.put_vector(sum_x2);
  w.put_f64(loglik);
  w.put_u64(points);
  w.put_u64(labels.size());
  for (const auto& [chunk_id, lbls] : labels) {
    w.put_u64(chunk_id);
    w.put_vector(lbls);
  }
}

void EMObject::deserialize(util::ByteReader& r) {
  resp = r.get_vector<double>();
  sum_x = r.get_vector<double>();
  sum_x2 = r.get_vector<double>();
  loglik = r.get_f64();
  points = r.get_u64();
  labels.clear();
  const std::uint64_t n = r.get_u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t chunk_id = r.get_u64();
    labels[chunk_id] = r.get_vector<std::uint8_t>();
  }
}

EMKernel::EMKernel(EMParams params) : params_(std::move(params)) {
  FGP_CHECK(params_.g > 0 && params_.dim > 0);
  FGP_CHECK_MSG(params_.initial_means.size() ==
                    static_cast<std::size_t>(params_.g) * params_.dim,
                "initial_means must be g x dim");
  FGP_CHECK(params_.initial_variance > 0.0);
  means_ = params_.initial_means;
  vars_.assign(static_cast<std::size_t>(params_.g) * params_.dim,
               params_.initial_variance);
  weights_.assign(static_cast<std::size_t>(params_.g),
                  1.0 / static_cast<double>(params_.g));
}

std::unique_ptr<freeride::ReductionObject> EMKernel::create_object() const {
  return std::make_unique<EMObject>(params_.g, params_.dim);
}

sim::Work EMKernel::process_chunk(const repository::Chunk& chunk,
                                  freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<EMObject&>(obj);
  const auto points = chunk.as_span<double>();
  const std::size_t d = static_cast<std::size_t>(params_.dim);
  const std::size_t g = static_cast<std::size_t>(params_.g);
  FGP_CHECK(points.size() % d == 0);
  const std::size_t count = points.size() / d;

  const EStepCoefs coefs = estep_coefs(d, g, vars_, weights_);
  std::vector<double> logp(g);
  std::vector<std::uint8_t> lbls(count);
  double* resp = o.resp.data();
  double* sum_x = o.sum_x.data();
  double* sum_x2 = o.sum_x2.data();
  for (std::size_t p = 0; p < count; ++p) {
    const double* x = points.data() + p * d;
    const double lse = point_log_densities(x, d, g, means_, coefs, logp);
    o.loglik += lse;
    std::size_t best = 0;
    for (std::size_t c = 0; c < g; ++c) {
      const double r = std::exp(logp[c] - lse);  // responsibility
      resp[c] += r;
      util::simd::weighted_moments(sum_x + c * d, sum_x2 + c * d, r, x, d);
      if (logp[c] > logp[best]) best = c;
    }
    lbls[p] = static_cast<std::uint8_t>(best);
  }
  o.points += count;
  FGP_CHECK_MSG(!o.labels.count(chunk.id()),
                "chunk " << chunk.id() << " processed twice into one object");
  o.labels[chunk.id()] = std::move(lbls);

  // log/exp-heavy E-step: ~8 flops per component-coordinate, plus the
  // per-component softmax.
  sim::Work w;
  w.flops = static_cast<double>(count) * static_cast<double>(g) *
            (static_cast<double>(d) * 8.0 + 12.0);
  w.bytes = static_cast<double>(count) * static_cast<double>(d) *
            sizeof(double);
  return w;
}

sim::Work EMKernel::merge(freeride::ReductionObject& into,
                          const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<EMObject&>(into);
  const auto& b = dynamic_cast<const EMObject&>(other);
  FGP_CHECK(a.resp.size() == b.resp.size());
  for (std::size_t i = 0; i < a.resp.size(); ++i) a.resp[i] += b.resp[i];
  for (std::size_t i = 0; i < a.sum_x.size(); ++i) {
    a.sum_x[i] += b.sum_x[i];
    a.sum_x2[i] += b.sum_x2[i];
  }
  a.loglik += b.loglik;
  a.points += b.points;
  double label_bytes = 0.0;
  for (const auto& [chunk_id, lbls] : b.labels) {
    FGP_CHECK_MSG(!a.labels.count(chunk_id),
                  "chunk " << chunk_id << " present in both reduction objects");
    a.labels[chunk_id] = lbls;
    label_bytes += static_cast<double>(lbls.size());
  }

  sim::Work w;
  w.flops = static_cast<double>(a.sum_x.size() * 2 + a.resp.size());
  w.bytes = static_cast<double>(a.sum_x.size()) * sizeof(double) * 4 +
            label_bytes * 2.0;
  return w;
}

sim::Work EMKernel::global_reduce(freeride::ReductionObject& merged,
                                  bool& more_passes) {
  auto& o = dynamic_cast<EMObject&>(merged);
  const std::size_t d = static_cast<std::size_t>(params_.dim);
  const std::size_t g = static_cast<std::size_t>(params_.g);
  const double total = static_cast<double>(o.points);
  FGP_CHECK_MSG(total > 0, "EM global reduction on zero points");

  // M step.
  std::size_t heaviest = 0;
  for (std::size_t c = 0; c < g; ++c)
    if (o.resp[c] > o.resp[heaviest]) heaviest = c;
  for (std::size_t c = 0; c < g; ++c) {
    if (o.resp[c] < params_.reseed_fraction * total) {
      // Starved component: reseed near the heaviest component.
      for (std::size_t j = 0; j < d; ++j) {
        means_[c * d + j] =
            o.sum_x[heaviest * d + j] / o.resp[heaviest] +
            0.5 * static_cast<double>(c + 1) / static_cast<double>(g);
        vars_[c * d + j] = params_.initial_variance;
      }
      weights_[c] = 1.0 / total;
      ++reseeds_;
      continue;
    }
    weights_[c] = o.resp[c] / total;
    for (std::size_t j = 0; j < d; ++j) {
      const double mu = o.sum_x[c * d + j] / o.resp[c];
      means_[c * d + j] = mu;
      vars_[c * d + j] =
          std::max(kVarFloor, o.sum_x2[c * d + j] / o.resp[c] - mu * mu);
    }
  }

  // Assignment-stability diagnostic from the shipped labels.
  std::uint64_t changed = 0, compared = 0;
  for (const auto& [chunk_id, lbls] : o.labels) {
    auto it = prev_labels_.find(chunk_id);
    if (it == prev_labels_.end() || it->second.size() != lbls.size()) continue;
    for (std::size_t i = 0; i < lbls.size(); ++i)
      changed += lbls[i] != it->second[i];
    compared += lbls.size();
  }
  label_change_fraction_ =
      compared > 0 ? static_cast<double>(changed) / static_cast<double>(compared)
                   : 1.0;
  prev_labels_ = o.labels;

  const double prev =
      loglik_history_.empty() ? -std::numeric_limits<double>::max()
                              : loglik_history_.back();
  loglik_history_.push_back(o.loglik);
  ++passes_run_;

  if (params_.fixed_passes > 0) {
    more_passes = passes_run_ < params_.fixed_passes;
  } else {
    const double improvement = o.loglik - prev;
    more_passes = improvement > params_.tol * std::abs(o.loglik);
  }

  sim::Work w;
  w.flops = static_cast<double>(g * d * 6);
  // Label comparison sweeps the whole label volume.
  w.bytes = static_cast<double>(o.points) * 2.0 +
            static_cast<double>(g * d) * sizeof(double) * 4;
  return w;
}

double EMKernel::broadcast_bytes() const {
  return static_cast<double>((means_.size() + vars_.size()) * sizeof(double) +
                             weights_.size() * sizeof(double));
}

std::vector<double> em_reference(const std::vector<double>& points, int dim,
                                 int g, std::vector<double> means,
                                 double initial_variance, double tol,
                                 int max_passes) {
  FGP_CHECK(dim > 0 && g > 0);
  const std::size_t d = static_cast<std::size_t>(dim);
  const std::size_t gc = static_cast<std::size_t>(g);
  FGP_CHECK(points.size() % d == 0);
  const std::size_t count = points.size() / d;
  FGP_CHECK(count > 0);

  std::vector<double> vars(gc * d, initial_variance);
  std::vector<double> weights(gc, 1.0 / static_cast<double>(g));
  std::vector<double> history;

  for (int pass = 0; pass < max_passes; ++pass) {
    std::vector<double> resp(gc, 0.0), sum_x(gc * d, 0.0), sum_x2(gc * d, 0.0);
    std::vector<double> logp(gc);
    const EStepCoefs coefs = estep_coefs(d, gc, vars, weights);
    double loglik = 0.0;
    for (std::size_t p = 0; p < count; ++p) {
      const double* x = points.data() + p * d;
      const double lse = point_log_densities(x, d, gc, means, coefs, logp);
      loglik += lse;
      for (std::size_t c = 0; c < gc; ++c) {
        const double r = std::exp(logp[c] - lse);
        resp[c] += r;
        util::simd::weighted_moments(sum_x.data() + c * d,
                                     sum_x2.data() + c * d, r, x, d);
      }
    }
    const double prev =
        history.empty() ? -std::numeric_limits<double>::max() : history.back();
    history.push_back(loglik);

    for (std::size_t c = 0; c < gc; ++c) {
      if (resp[c] < 1e-12) continue;
      weights[c] = resp[c] / static_cast<double>(count);
      for (std::size_t j = 0; j < d; ++j) {
        const double mu = sum_x[c * d + j] / resp[c];
        means[c * d + j] = mu;
        vars[c * d + j] =
            std::max(kVarFloor, sum_x2[c * d + j] / resp[c] - mu * mu);
      }
    }
    if (loglik - prev <= tol * std::abs(loglik)) break;
  }
  return history;
}

}  // namespace fgp::apps
