#include "apps/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/simd.h"

namespace fgp::apps {

KnnObject::KnnObject(int num_queries_, int k_, int dim_)
    : num_queries(num_queries_),
      k(k_),
      dim(dim_),
      dists(static_cast<std::size_t>(num_queries_) * k_,
            std::numeric_limits<double>::infinity()),
      coords(static_cast<std::size_t>(num_queries_) * k_ * dim_, 0.0) {}

void KnnObject::serialize(util::ByteWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(num_queries));
  w.put_u32(static_cast<std::uint32_t>(k));
  w.put_u32(static_cast<std::uint32_t>(dim));
  w.put_vector(dists);
  w.put_vector(coords);
}

void KnnObject::deserialize(util::ByteReader& r) {
  num_queries = static_cast<int>(r.get_u32());
  k = static_cast<int>(r.get_u32());
  dim = static_cast<int>(r.get_u32());
  dists = r.get_vector<double>();
  coords = r.get_vector<double>();
  FGP_CHECK(dists.size() ==
            static_cast<std::size_t>(num_queries) * static_cast<std::size_t>(k));
  FGP_CHECK(coords.size() == dists.size() * static_cast<std::size_t>(dim));
}

double KnnObject::kth_distance(std::size_t q) const {
  return dists[q * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(k - 1)];
}

void KnnObject::insert(std::size_t q, double dist, const double* point) {
  const std::size_t kk = static_cast<std::size_t>(k);
  const std::size_t dd = static_cast<std::size_t>(dim);
  double* qd = dists.data() + q * kk;
  double* qc = coords.data() + q * kk * dd;
  if (dist >= qd[kk - 1]) return;
  // Shift worse entries right, then place the candidate.
  std::size_t pos = kk - 1;
  while (pos > 0 && qd[pos - 1] > dist) {
    qd[pos] = qd[pos - 1];
    std::copy(qc + (pos - 1) * dd, qc + pos * dd, qc + pos * dd);
    --pos;
  }
  qd[pos] = dist;
  std::copy(point, point + dd, qc + pos * dd);
}

KnnKernel::KnnKernel(KnnParams params) : params_(std::move(params)) {
  FGP_CHECK(params_.k > 0 && params_.dim > 0);
  FGP_CHECK_MSG(!params_.queries.empty() &&
                    params_.queries.size() %
                            static_cast<std::size_t>(params_.dim) ==
                        0,
                "queries must be m x dim");
}

int KnnKernel::num_queries() const {
  return static_cast<int>(params_.queries.size() /
                          static_cast<std::size_t>(params_.dim));
}

std::unique_ptr<freeride::ReductionObject> KnnKernel::create_object() const {
  return std::make_unique<KnnObject>(num_queries(), params_.k, params_.dim);
}

sim::Work KnnKernel::process_chunk(const repository::Chunk& chunk,
                                   freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<KnnObject&>(obj);
  const auto points = chunk.as_span<double>();
  const std::size_t d = static_cast<std::size_t>(params_.dim);
  FGP_CHECK(points.size() % d == 0);
  const std::size_t count = points.size() / d;
  const std::size_t m = static_cast<std::size_t>(num_queries());

  // Full tiled distances instead of the scalar per-coordinate early
  // exit: the squared distance is monotone in its prefix sums, so
  // "insert iff the full distance beats the current kth best" is exactly
  // the early-exit semantics, and insert() already guards the bound.
  // Per-point distance bits equal the serial scalar order (util/simd.h).
  const double* queries = params_.queries.data();
  const double* x = points.data();
  std::size_t p = 0;
  constexpr std::size_t tile = util::simd::kPointTile;
  for (; p + tile <= count; p += tile, x += tile * d) {
    const double* qp = queries;
    for (std::size_t q = 0; q < m; ++q, qp += d) {
      double dist[tile];
      util::simd::squared_distance_x4(x, d, qp, d, dist);
      for (std::size_t t = 0; t < tile; ++t) o.insert(q, dist[t], x + t * d);
    }
  }
  for (; p < count; ++p, x += d) {
    const double* qp = queries;
    for (std::size_t q = 0; q < m; ++q, qp += d) {
      o.insert(q, util::simd::squared_distance_serial(x, qp, d), x);
    }
  }

  sim::Work w;
  w.flops = static_cast<double>(count) * static_cast<double>(m) *
            static_cast<double>(d) * 3.0;
  w.bytes = static_cast<double>(count) * static_cast<double>(d) *
            sizeof(double);
  return w;
}

sim::Work KnnKernel::merge(freeride::ReductionObject& into,
                           const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<KnnObject&>(into);
  const auto& b = dynamic_cast<const KnnObject&>(other);
  FGP_CHECK(a.num_queries == b.num_queries && a.k == b.k && a.dim == b.dim);
  const std::size_t kk = static_cast<std::size_t>(a.k);
  const std::size_t dd = static_cast<std::size_t>(a.dim);
  for (std::size_t q = 0; q < static_cast<std::size_t>(a.num_queries); ++q) {
    for (std::size_t i = 0; i < kk; ++i) {
      const double dist = b.dists[q * kk + i];
      if (!std::isfinite(dist)) break;  // rest is padding
      a.insert(q, dist, b.coords.data() + (q * kk + i) * dd);
    }
  }
  sim::Work w;
  w.flops = static_cast<double>(a.num_queries) * static_cast<double>(kk) *
            static_cast<double>(dd);
  w.bytes = static_cast<double>(b.dists.size() + b.coords.size()) *
            sizeof(double);
  return w;
}

sim::Work KnnKernel::global_reduce(freeride::ReductionObject& merged,
                                   bool& more_passes) {
  // Lists are already sorted; the global step only validates them.
  auto& o = dynamic_cast<KnnObject&>(merged);
  const std::size_t kk = static_cast<std::size_t>(o.k);
  for (std::size_t q = 0; q < static_cast<std::size_t>(o.num_queries); ++q)
    FGP_CHECK(std::is_sorted(o.dists.begin() + q * kk,
                             o.dists.begin() + (q + 1) * kk));
  more_passes = false;
  sim::Work w;
  w.flops = static_cast<double>(o.dists.size());
  w.bytes = static_cast<double>(o.dists.size()) * sizeof(double);
  return w;
}

std::vector<double> knn_reference(const std::vector<double>& points, int dim,
                                  const double* query, int k) {
  FGP_CHECK(dim > 0 && k > 0);
  const std::size_t d = static_cast<std::size_t>(dim);
  FGP_CHECK(points.size() % d == 0);
  const std::size_t count = points.size() / d;
  std::vector<double> dists;
  dists.reserve(count);
  // Same serial per-point accumulation order as the kernel's tiled fast
  // path: tests compare the two bit-exactly.
  for (std::size_t p = 0; p < count; ++p)
    dists.push_back(
        util::simd::squared_distance_serial(points.data() + p * d, query, d));
  std::sort(dists.begin(), dists.end());
  dists.resize(std::min<std::size_t>(static_cast<std::size_t>(k), count),
               std::numeric_limits<double>::infinity());
  dists.resize(static_cast<std::size_t>(k),
               std::numeric_limits<double>::infinity());
  return dists;
}

}  // namespace fgp::apps
