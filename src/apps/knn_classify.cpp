#include "apps/knn_classify.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/check.h"
#include "util/simd.h"

namespace fgp::apps {

KnnClassifyObject::KnnClassifyObject(int num_queries_, int k_)
    : num_queries(num_queries_),
      k(k_),
      dists(static_cast<std::size_t>(num_queries_) * k_,
            std::numeric_limits<double>::infinity()),
      labels(static_cast<std::size_t>(num_queries_) * k_, -1) {}

void KnnClassifyObject::serialize(util::ByteWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(num_queries));
  w.put_u32(static_cast<std::uint32_t>(k));
  w.put_vector(dists);
  w.put_vector(labels);
  w.put_vector(predicted);
}

void KnnClassifyObject::deserialize(util::ByteReader& r) {
  num_queries = static_cast<int>(r.get_u32());
  k = static_cast<int>(r.get_u32());
  dists = r.get_vector<double>();
  labels = r.get_vector<std::int32_t>();
  predicted = r.get_vector<std::int32_t>();
  FGP_CHECK(dists.size() ==
            static_cast<std::size_t>(num_queries) * static_cast<std::size_t>(k));
  FGP_CHECK(labels.size() == dists.size());
}

double KnnClassifyObject::kth_distance(std::size_t q) const {
  return dists[q * static_cast<std::size_t>(k) +
               static_cast<std::size_t>(k - 1)];
}

void KnnClassifyObject::insert(std::size_t q, double dist,
                               std::int32_t label) {
  const std::size_t kk = static_cast<std::size_t>(k);
  double* qd = dists.data() + q * kk;
  std::int32_t* ql = labels.data() + q * kk;
  if (dist >= qd[kk - 1]) return;
  std::size_t pos = kk - 1;
  while (pos > 0 && qd[pos - 1] > dist) {
    qd[pos] = qd[pos - 1];
    ql[pos] = ql[pos - 1];
    --pos;
  }
  qd[pos] = dist;
  ql[pos] = label;
}

KnnClassifyKernel::KnnClassifyKernel(KnnClassifyParams params)
    : params_(std::move(params)) {
  FGP_CHECK(params_.k > 0 && params_.dim > 0);
  FGP_CHECK_MSG(!params_.queries.empty() &&
                    params_.queries.size() %
                            static_cast<std::size_t>(params_.dim) ==
                        0,
                "queries must be m x dim");
}

int KnnClassifyKernel::num_queries() const {
  return static_cast<int>(params_.queries.size() /
                          static_cast<std::size_t>(params_.dim));
}

std::unique_ptr<freeride::ReductionObject> KnnClassifyKernel::create_object()
    const {
  return std::make_unique<KnnClassifyObject>(num_queries(), params_.k);
}

sim::Work KnnClassifyKernel::process_chunk(
    const repository::Chunk& chunk, freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<KnnClassifyObject&>(obj);
  const auto rows = chunk.as_span<double>();
  const std::size_t d = static_cast<std::size_t>(params_.dim);
  const std::size_t row = d + 1;  // [label, features...]
  FGP_CHECK_MSG(rows.size() % row == 0,
                "chunk " << chunk.id() << " not labeled rows of dim+1");
  const std::size_t count = rows.size() / row;
  const std::size_t m = static_cast<std::size_t>(num_queries());

  // Same rewrite as KnnKernel: full tiled distance, with insert()
  // enforcing the kth-best bound. The labeled rows tile with stride d+1.
  const double* queries = params_.queries.data();
  const double* r = rows.data();
  std::size_t p = 0;
  constexpr std::size_t tile = util::simd::kPointTile;
  for (; p + tile <= count; p += tile, r += tile * row) {
    const double* qp = queries;
    for (std::size_t q = 0; q < m; ++q, qp += d) {
      double dist[tile];
      util::simd::squared_distance_x4(r + 1, row, qp, d, dist);
      for (std::size_t t = 0; t < tile; ++t)
        o.insert(q, dist[t],
                 static_cast<std::int32_t>(r[t * row]));
    }
  }
  for (; p < count; ++p, r += row) {
    const auto label = static_cast<std::int32_t>(r[0]);
    const double* x = r + 1;
    const double* qp = queries;
    for (std::size_t q = 0; q < m; ++q, qp += d) {
      o.insert(q, util::simd::squared_distance_serial(x, qp, d), label);
    }
  }

  sim::Work w;
  w.flops = static_cast<double>(count) * static_cast<double>(m) *
            static_cast<double>(d) * 3.0;
  w.bytes = static_cast<double>(count) * static_cast<double>(row) *
            sizeof(double);
  return w;
}

sim::Work KnnClassifyKernel::merge(freeride::ReductionObject& into,
                                   const freeride::ReductionObject& other)
    const {
  auto& a = dynamic_cast<KnnClassifyObject&>(into);
  const auto& b = dynamic_cast<const KnnClassifyObject&>(other);
  FGP_CHECK(a.num_queries == b.num_queries && a.k == b.k);
  const std::size_t kk = static_cast<std::size_t>(a.k);
  for (std::size_t q = 0; q < static_cast<std::size_t>(a.num_queries); ++q) {
    for (std::size_t i = 0; i < kk; ++i) {
      const double dist = b.dists[q * kk + i];
      if (!std::isfinite(dist)) break;
      a.insert(q, dist, b.labels[q * kk + i]);
    }
  }
  sim::Work w;
  w.flops = static_cast<double>(a.num_queries) * static_cast<double>(kk) * 2.0;
  w.bytes = static_cast<double>(b.dists.size()) *
            (sizeof(double) + sizeof(std::int32_t));
  return w;
}

sim::Work KnnClassifyKernel::global_reduce(freeride::ReductionObject& merged,
                                           bool& more_passes) {
  auto& o = dynamic_cast<KnnClassifyObject&>(merged);
  more_passes = false;
  const std::size_t kk = static_cast<std::size_t>(o.k);
  o.predicted.assign(static_cast<std::size_t>(o.num_queries), -1);
  for (std::size_t q = 0; q < static_cast<std::size_t>(o.num_queries); ++q) {
    std::map<std::int32_t, int> votes;
    for (std::size_t i = 0; i < kk; ++i) {
      if (!std::isfinite(o.dists[q * kk + i])) break;
      votes[o.labels[q * kk + i]] += 1;
    }
    int best_votes = -1;
    for (const auto& [label, n] : votes) {
      if (n > best_votes) {  // ties resolve to the smallest label id
        best_votes = n;
        o.predicted[q] = label;
      }
    }
  }
  sim::Work w;
  w.flops = static_cast<double>(o.dists.size()) * 2.0;
  w.bytes = static_cast<double>(o.dists.size()) * sizeof(double);
  return w;
}

std::int32_t knn_classify_reference(const std::vector<double>& rows, int dim,
                                    const double* query, int k) {
  FGP_CHECK(dim > 0 && k > 0);
  const std::size_t d = static_cast<std::size_t>(dim);
  const std::size_t row = d + 1;
  FGP_CHECK(rows.size() % row == 0);
  const std::size_t count = rows.size() / row;

  std::vector<std::pair<double, std::int32_t>> all;
  all.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    const double* r = rows.data() + p * row;
    all.emplace_back(util::simd::squared_distance_serial(r + 1, query, d),
                     static_cast<std::int32_t>(r[0]));
  }
  std::sort(all.begin(), all.end());
  std::map<std::int32_t, int> votes;
  for (std::size_t i = 0; i < std::min<std::size_t>(all.size(),
                                                    static_cast<std::size_t>(k));
       ++i)
    votes[all[i].second] += 1;
  std::int32_t best = -1;
  int best_votes = -1;
  for (const auto& [label, n] : votes) {
    if (n > best_votes) {
      best_votes = n;
      best = label;
    }
  }
  return best;
}

}  // namespace fgp::apps
