#include "apps/vortex.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "util/simd.h"
#include "util/union_find.h"

namespace fgp::apps {

namespace {

using datagen::FieldChunkView;

/// Packs (row, x) into one key for the cross-band join maps.
std::uint64_t cell_key(std::int64_t row, std::int64_t x) {
  return (static_cast<std::uint64_t>(row) << 32) ^
         static_cast<std::uint32_t>(x);
}

struct VortexAccum {
  std::int32_t sign = 0;
  std::uint64_t cells = 0;
  double sum_x = 0.0, sum_y = 0.0;
};

std::vector<Vortex> finalize(std::vector<VortexAccum> accums,
                             std::uint64_t min_cells) {
  std::vector<Vortex> out;
  for (const auto& a : accums) {
    if (a.cells < min_cells) continue;  // de-noising
    Vortex v;
    v.cells = a.cells;
    v.sign = a.sign;
    v.cx = a.sum_x / static_cast<double>(a.cells);
    v.cy = a.sum_y / static_cast<double>(a.cells);
    out.push_back(v);
  }
  std::sort(out.begin(), out.end(), [](const Vortex& a, const Vortex& b) {
    if (a.cells != b.cells) return a.cells > b.cells;
    if (a.cy != b.cy) return a.cy < b.cy;
    return a.cx < b.cx;
  });
  return out;
}

}  // namespace

void VortexObject::serialize(util::ByteWriter& w) const {
  w.put_u64(fragments.size());
  for (const auto& f : fragments) {
    w.put<std::int32_t>(f.sign);
    w.put_u64(f.cells);
    w.put_f64(f.sum_x);
    w.put_f64(f.sum_y);
    w.put_vector(f.boundary);
  }
  w.put_u64(vortices.size());
  for (const auto& v : vortices) {
    w.put_f64(v.cx);
    w.put_f64(v.cy);
    w.put_u64(v.cells);
    w.put<std::int32_t>(v.sign);
  }
}

void VortexObject::deserialize(util::ByteReader& r) {
  fragments.clear();
  vortices.clear();
  const std::uint64_t nf = r.get_count();
  fragments.reserve(nf);
  for (std::uint64_t i = 0; i < nf; ++i) {
    RegionFragment f;
    f.sign = r.get<std::int32_t>();
    f.cells = r.get_u64();
    f.sum_x = r.get_f64();
    f.sum_y = r.get_f64();
    f.boundary = r.get_vector<BoundaryCell>();
    fragments.push_back(std::move(f));
  }
  const std::uint64_t nv = r.get_count();
  vortices.reserve(nv);
  for (std::uint64_t i = 0; i < nv; ++i) {
    Vortex v;
    v.cx = r.get_f64();
    v.cy = r.get_f64();
    v.cells = r.get_u64();
    v.sign = r.get<std::int32_t>();
    vortices.push_back(v);
  }
}

VortexKernel::VortexKernel(VortexParams params) : params_(params) {
  FGP_CHECK(params_.vorticity_threshold > 0.0);
}

std::unique_ptr<freeride::ReductionObject> VortexKernel::create_object() const {
  return std::make_unique<VortexObject>();
}

sim::Work VortexKernel::process_chunk(const repository::Chunk& chunk,
                                      freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<VortexObject&>(obj);
  const FieldChunkView view = datagen::parse_field_chunk(chunk);
  const auto& h = view.header;

  // Detection + classification over the owned rows. Global-border cells
  // have no full stencil and are skipped. The three stencil rows are
  // hoisted to raw pointers so the inner loop streams contiguously; the
  // arithmetic is the same central-difference expression as before.
  const std::uint32_t W = h.width;
  std::vector<std::int8_t> mark(static_cast<std::size_t>(h.rows) * W, 0);
  const datagen::Vec2f* cells = view.cells.data();
  for (std::uint32_t r = 0; r < h.rows; ++r) {
    const std::uint32_t gy = h.row0 + r;
    if (gy == 0 || gy + 1 >= h.height) continue;
    const datagen::Vec2f* above =
        cells + static_cast<std::size_t>(gy - 1 - h.stored_row0) * W;
    const datagen::Vec2f* mid = above + W;
    const datagen::Vec2f* below = mid + W;
    std::int8_t* mrow = mark.data() + static_cast<std::size_t>(r) * W;
    for (std::uint32_t gx = 1; gx + 1 < W; ++gx) {
      const double dvdx = 0.5 * (mid[gx + 1].v - mid[gx - 1].v);
      const double dudy = 0.5 * (below[gx].u - above[gx].u);
      const double w = dvdx - dudy;
      if (w > params_.vorticity_threshold)
        mrow[gx] = 1;
      else if (w < -params_.vorticity_threshold)
        mrow[gx] = -1;
    }
  }

  // Local aggregation: 4-connected components of same-sign cells. Marks
  // are sparse, so empty 8-cell groups are skipped with one 64-bit load.
  util::UnionFind uf(static_cast<std::size_t>(h.rows) * W);
  for (std::uint32_t r = 0; r < h.rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * W;
    for (std::uint32_t x = 0; x < W;) {
      if (x + 8 <= W &&
          util::simd::all_bytes_equal8(mark.data() + base + x, 0)) {
        x += 8;
        continue;
      }
      const std::size_t idx = base + x;
      if (mark[idx] != 0) {
        if (x + 1 < W && mark[idx + 1] == mark[idx]) uf.unite(idx, idx + 1);
        if (r + 1 < h.rows && mark[idx + W] == mark[idx])
          uf.unite(idx, idx + W);
      }
      ++x;
    }
  }

  // Build fragments rooted at their union-find representative.
  std::unordered_map<std::size_t, std::size_t> root_to_fragment;
  for (std::uint32_t r = 0; r < h.rows; ++r) {
    const std::size_t base = static_cast<std::size_t>(r) * W;
    for (std::uint32_t x = 0; x < W;) {
      if (x + 8 <= W &&
          util::simd::all_bytes_equal8(mark.data() + base + x, 0)) {
        x += 8;
        continue;
      }
      const std::size_t idx = base + x;
      if (mark[idx] == 0) {
        ++x;
        continue;
      }
      const std::size_t root = uf.find(idx);
      auto [it, inserted] = root_to_fragment.try_emplace(
          root, o.fragments.size());
      if (inserted) {
        RegionFragment f;
        f.sign = mark[idx];
        o.fragments.push_back(std::move(f));
      }
      RegionFragment& f = o.fragments[it->second];
      f.cells += 1;
      f.sum_x += x;
      f.sum_y += h.row0 + r;
      if (r == 0 || r + 1 == h.rows)
        f.boundary.push_back({static_cast<std::int32_t>(h.row0 + r),
                              static_cast<std::int32_t>(x)});
      ++x;
    }
  }

  // ~12 flops per owned cell for the stencil and threshold; the whole
  // stored band streams through memory once.
  sim::Work w;
  w.flops = static_cast<double>(h.rows) * W * 12.0;
  w.bytes = static_cast<double>(view.cells.size()) * sizeof(datagen::Vec2f);
  return w;
}

sim::Work VortexKernel::merge(freeride::ReductionObject& into,
                              const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<VortexObject&>(into);
  const auto& b = dynamic_cast<const VortexObject&>(other);
  double moved = 0.0;
  for (const auto& f : b.fragments) {
    moved += static_cast<double>(sizeof(RegionFragment) +
                                 f.boundary.size() * sizeof(BoundaryCell));
    a.fragments.push_back(f);
  }
  sim::Work w;
  w.flops = static_cast<double>(b.fragments.size()) * 4.0;
  w.bytes = moved * 2.0;
  return w;
}

sim::Work VortexKernel::global_reduce(freeride::ReductionObject& merged,
                                      bool& more_passes) {
  auto& o = dynamic_cast<VortexObject&>(merged);
  more_passes = false;

  // Cross-band join: fragments owning a boundary cell at (row, x) connect
  // to fragments owning (row+1, x) with the same rotation sense.
  std::unordered_map<std::uint64_t, std::size_t> cell_owner;
  double boundary_cells = 0.0;
  for (std::size_t i = 0; i < o.fragments.size(); ++i) {
    for (const auto& bc : o.fragments[i].boundary) {
      cell_owner.emplace(cell_key(bc.row, bc.x), i);
      boundary_cells += 1.0;
    }
  }
  util::UnionFind uf(o.fragments.size());
  for (std::size_t i = 0; i < o.fragments.size(); ++i) {
    for (const auto& bc : o.fragments[i].boundary) {
      auto it = cell_owner.find(cell_key(bc.row + 1, bc.x));
      if (it != cell_owner.end() && it->second != i &&
          o.fragments[it->second].sign == o.fragments[i].sign)
        uf.unite(i, it->second);
    }
  }

  std::unordered_map<std::size_t, std::size_t> root_to_accum;
  std::vector<VortexAccum> accums;
  for (std::size_t i = 0; i < o.fragments.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto [it, inserted] = root_to_accum.try_emplace(root, accums.size());
    if (inserted) {
      VortexAccum a;
      a.sign = o.fragments[i].sign;
      accums.push_back(a);
    }
    VortexAccum& a = accums[it->second];
    a.cells += o.fragments[i].cells;
    a.sum_x += o.fragments[i].sum_x;
    a.sum_y += o.fragments[i].sum_y;
  }

  o.vortices = finalize(std::move(accums), params_.min_cells);

  sim::Work w;
  w.flops = static_cast<double>(o.fragments.size()) * 8.0 +
            boundary_cells * 4.0;
  w.bytes = static_cast<double>(o.fragments.size()) *
                sizeof(RegionFragment) +
            boundary_cells * sizeof(BoundaryCell) * 2.0;
  return w;
}

std::vector<Vortex> vortex_reference(const datagen::FlowDataset& flow,
                                     const VortexParams& params) {
  const int W = flow.width;
  const int H = flow.height;

  // Reassemble the field from the owned rows of every chunk.
  std::vector<datagen::Vec2f> field(static_cast<std::size_t>(W) * H);
  for (const auto& chunk : flow.dataset.chunks()) {
    const auto view = datagen::parse_field_chunk(chunk);
    for (std::uint32_t r = 0; r < view.header.rows; ++r) {
      const std::uint32_t gy = view.header.row0 + r;
      for (std::uint32_t x = 0; x < view.header.width; ++x)
        field[static_cast<std::size_t>(gy) * W + x] = view.at(gy, x);
    }
  }

  auto at = [&](int y, int x) -> const datagen::Vec2f& {
    return field[static_cast<std::size_t>(y) * W + x];
  };
  std::vector<std::int8_t> mark(static_cast<std::size_t>(W) * H, 0);
  for (int y = 1; y + 1 < H; ++y) {
    for (int x = 1; x + 1 < W; ++x) {
      const double w = 0.5 * (at(y, x + 1).v - at(y, x - 1).v) -
                       0.5 * (at(y + 1, x).u - at(y - 1, x).u);
      if (w > params.vorticity_threshold)
        mark[static_cast<std::size_t>(y) * W + x] = 1;
      else if (w < -params.vorticity_threshold)
        mark[static_cast<std::size_t>(y) * W + x] = -1;
    }
  }

  util::UnionFind uf(mark.size());
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      const std::size_t idx = static_cast<std::size_t>(y) * W + x;
      if (mark[idx] == 0) continue;
      if (x + 1 < W && mark[idx + 1] == mark[idx]) uf.unite(idx, idx + 1);
      if (y + 1 < H && mark[idx + static_cast<std::size_t>(W)] == mark[idx])
        uf.unite(idx, idx + static_cast<std::size_t>(W));
    }
  }

  std::unordered_map<std::size_t, std::size_t> root_to_accum;
  std::vector<VortexAccum> accums;
  for (int y = 0; y < H; ++y) {
    for (int x = 0; x < W; ++x) {
      const std::size_t idx = static_cast<std::size_t>(y) * W + x;
      if (mark[idx] == 0) continue;
      const std::size_t root = uf.find(idx);
      auto [it, inserted] = root_to_accum.try_emplace(root, accums.size());
      if (inserted) {
        VortexAccum a;
        a.sign = mark[idx];
        accums.push_back(a);
      }
      VortexAccum& a = accums[it->second];
      a.cells += 1;
      a.sum_x += x;
      a.sum_y += y;
    }
  }
  return finalize(std::move(accums), params.min_cells);
}

}  // namespace fgp::apps
