// em.h — Expectation-Maximization clustering of Gaussian mixtures on the
// FREERIDE-G reduction API (paper §4.2).
//
// Diagonal-covariance GMM. The local reduction accumulates per-component
// responsibilities, weighted coordinate sums and squared sums, and the
// data log-likelihood; it also records each point's hard assignment label.
// The labels travel in the reduction object so the master can track
// assignment stability across passes and reseed starved components — this
// makes the object's size proportional to the node's data volume, the
// paper's "linear object size" class (and its global reduction the
// "constant-linear" class: work scales with dataset size, not node count).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "freeride/reduction.h"
#include "repository/dataset.h"

namespace fgp::apps {

/// Reduction object: per-component sufficient statistics + per-point labels.
class EMObject final : public freeride::ReductionObject {
 public:
  EMObject() = default;
  EMObject(int g, int dim)
      : resp(static_cast<std::size_t>(g)),
        sum_x(static_cast<std::size_t>(g) * dim),
        sum_x2(static_cast<std::size_t>(g) * dim) {}

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  std::vector<double> resp;    ///< sum of responsibilities per component
  std::vector<double> sum_x;   ///< responsibility-weighted coordinate sums
  std::vector<double> sum_x2;  ///< responsibility-weighted squared sums
  double loglik = 0.0;
  std::uint64_t points = 0;
  /// Hard assignment labels per chunk (chunk id -> one byte per point).
  std::map<std::uint64_t, std::vector<std::uint8_t>> labels;
};

struct EMParams {
  int g = 4;  ///< mixture components
  int dim = 8;
  std::vector<double> initial_means;  ///< row-major [g x dim]
  double initial_variance = 1.0;
  double tol = 1e-5;     ///< relative log-likelihood improvement threshold
  int fixed_passes = 0;  ///< >0: run exactly this many passes
  double reseed_fraction = 1e-6;  ///< resp share below which a component reseeds
};

class EMKernel final : public freeride::ReductionKernel {
 public:
  explicit EMKernel(EMParams params);

  std::string name() const override { return "em"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  double broadcast_bytes() const override;
  bool reduction_object_scales_with_data() const override { return true; }

  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& variances() const { return vars_; }
  const std::vector<double>& weights() const { return weights_; }
  const std::vector<double>& loglik_history() const { return loglik_history_; }
  /// Fraction of points whose hard assignment changed in the latest pass
  /// (1.0 on the first pass).
  double label_change_fraction() const { return label_change_fraction_; }
  int passes_run() const { return passes_run_; }
  int reseeds() const { return reseeds_; }

 private:
  EMParams params_;
  std::vector<double> means_, vars_, weights_;
  std::vector<double> loglik_history_;
  std::map<std::uint64_t, std::vector<std::uint8_t>> prev_labels_;
  double label_change_fraction_ = 1.0;
  int passes_run_ = 0;
  int reseeds_ = 0;
};

/// Serial reference EM; returns the log-likelihood history.
std::vector<double> em_reference(const std::vector<double>& points, int dim,
                                 int g, std::vector<double> means,
                                 double initial_variance, double tol,
                                 int max_passes);

}  // namespace fgp::apps
