#include "apps/apriori.h"

#include <algorithm>
#include <functional>
#include <map>

#include "util/check.h"

namespace fgp::apps {

using datagen::Item;
using datagen::Itemset;

namespace {

/// Two-pointer subset test over ascending item lists. Returns the number
/// of comparisons performed (the real work the virtual CPU is charged).
bool is_subset(std::span<const Item> needle, std::span<const Item> haystack,
               std::size_t* comparisons) {
  std::size_t i = 0, j = 0;
  while (i < needle.size() && j < haystack.size()) {
    ++*comparisons;
    if (needle[i] == haystack[j]) {
      ++i;
      ++j;
    } else if (needle[i] > haystack[j]) {
      ++j;
    } else {
      return false;
    }
  }
  return i == needle.size();
}

}  // namespace

void AprioriObject::serialize(util::ByteWriter& w) const {
  w.put_vector(counts);
  w.put_u64(transactions);
}

void AprioriObject::deserialize(util::ByteReader& r) {
  counts = r.get_vector<std::uint64_t>();
  transactions = r.get_u64();
}

AprioriKernel::AprioriKernel(AprioriParams params) : params_(params) {
  FGP_CHECK_MSG(params_.num_items > 0, "apriori needs the catalogue size");
  FGP_CHECK(params_.min_support > 0.0 && params_.min_support <= 1.0);
  FGP_CHECK(params_.max_level >= 1);
  // Level-1 candidates: every single item.
  candidates_.reserve(params_.num_items);
  for (Item item = 0; item < params_.num_items; ++item)
    candidates_.push_back({item});
}

std::unique_ptr<freeride::ReductionObject> AprioriKernel::create_object()
    const {
  return std::make_unique<AprioriObject>(candidates_.size());
}

sim::Work AprioriKernel::process_chunk(const repository::Chunk& chunk,
                                       freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<AprioriObject&>(obj);
  FGP_CHECK(o.counts.size() == candidates_.size());
  const auto txns = datagen::parse_transactions(chunk);

  std::size_t comparisons = 0;
  for (const auto& txn : txns) {
    for (std::size_t ci = 0; ci < candidates_.size(); ++ci) {
      if (candidates_[ci].size() > txn.items.size()) continue;
      if (is_subset(candidates_[ci], txn.items, &comparisons))
        o.counts[ci] += 1;
    }
  }
  o.transactions += txns.size();

  sim::Work w;
  w.flops = static_cast<double>(comparisons) * 2.0;
  w.bytes = static_cast<double>(chunk.real_bytes()) +
            static_cast<double>(comparisons) * sizeof(Item);
  return w;
}

sim::Work AprioriKernel::merge(freeride::ReductionObject& into,
                               const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<AprioriObject&>(into);
  const auto& b = dynamic_cast<const AprioriObject&>(other);
  FGP_CHECK(a.counts.size() == b.counts.size());
  for (std::size_t i = 0; i < a.counts.size(); ++i) a.counts[i] += b.counts[i];
  a.transactions += b.transactions;
  sim::Work w;
  w.flops = static_cast<double>(a.counts.size());
  w.bytes = static_cast<double>(a.counts.size()) * sizeof(std::uint64_t) * 2;
  return w;
}

sim::Work AprioriKernel::global_reduce(freeride::ReductionObject& merged,
                                       bool& more_passes) {
  auto& o = dynamic_cast<AprioriObject&>(merged);
  FGP_CHECK_MSG(o.transactions > 0, "apriori needs transactions");
  const auto threshold = static_cast<std::uint64_t>(
      params_.min_support * static_cast<double>(o.transactions));

  std::vector<Itemset> survivors;
  for (std::size_t ci = 0; ci < candidates_.size(); ++ci) {
    if (o.counts[ci] >= threshold && o.counts[ci] > 0) {
      survivors.push_back(candidates_[ci]);
      frequent_.push_back({candidates_[ci], o.counts[ci]});
    }
  }

  double gen_work = static_cast<double>(candidates_.size());
  if (level_ < params_.max_level) {
    candidates_ = apriori_generate_candidates(survivors);
    gen_work += static_cast<double>(survivors.size()) *
                static_cast<double>(survivors.size());
  } else {
    candidates_.clear();
  }
  ++level_;
  more_passes = !candidates_.empty();

  sim::Work w;
  w.flops = gen_work * 4.0;
  w.bytes = gen_work * sizeof(Item) * 4.0;
  return w;
}

double AprioriKernel::broadcast_bytes() const {
  double bytes = 0.0;
  for (const auto& c : candidates_)
    bytes += static_cast<double>(c.size() * sizeof(Item) + sizeof(std::uint16_t));
  return bytes;
}

std::vector<Itemset> apriori_generate_candidates(
    const std::vector<Itemset>& frequent_level) {
  // Inputs are lexicographically sorted (construction preserves order).
  std::vector<Itemset> candidates;
  for (std::size_t i = 0; i < frequent_level.size(); ++i) {
    for (std::size_t j = i + 1; j < frequent_level.size(); ++j) {
      const Itemset& a = frequent_level[i];
      const Itemset& b = frequent_level[j];
      // Join condition: equal (k-1)-prefix, b's last item greater.
      if (!std::equal(a.begin(), a.end() - 1, b.begin(), b.end() - 1)) break;
      Itemset joined = a;
      joined.push_back(b.back());

      // Downward closure: every k-subset must be frequent.
      bool all_frequent = true;
      for (std::size_t drop = 0; drop + 1 < joined.size() && all_frequent;
           ++drop) {
        Itemset subset;
        for (std::size_t x = 0; x < joined.size(); ++x)
          if (x != drop) subset.push_back(joined[x]);
        all_frequent = std::binary_search(frequent_level.begin(),
                                          frequent_level.end(), subset);
      }
      if (all_frequent) candidates.push_back(std::move(joined));
    }
  }
  return candidates;
}

std::vector<FrequentItemset> apriori_reference(
    const datagen::TransactionsDataset& data, double min_support,
    int max_level) {
  // Exhaustive subset enumeration — exponential, test-scale only.
  std::map<Itemset, std::uint64_t> counts;
  std::uint64_t transactions = 0;
  for (const auto& chunk : data.dataset.chunks()) {
    for (const auto& txn : datagen::parse_transactions(chunk)) {
      ++transactions;
      const auto& items = txn.items;
      // Enumerate subsets of size 1..max_level via index recursion.
      std::vector<std::size_t> stack;
      std::vector<Item> current;
      std::function<void(std::size_t)> recurse = [&](std::size_t start) {
        if (!current.empty()) counts[Itemset(current)] += 1;
        if (static_cast<int>(current.size()) == max_level) return;
        for (std::size_t k = start; k < items.size(); ++k) {
          current.push_back(items[k]);
          recurse(k + 1);
          current.pop_back();
        }
      };
      recurse(0);
    }
  }
  const auto threshold = static_cast<std::uint64_t>(
      min_support * static_cast<double>(transactions));
  std::vector<FrequentItemset> out;
  for (const auto& [items, count] : counts)
    if (count >= threshold && count > 0) out.push_back({items, count});
  // Level-major, lexicographic within a level (matches the kernel's order).
  std::sort(out.begin(), out.end(),
            [](const FrequentItemset& a, const FrequentItemset& b) {
              if (a.items.size() != b.items.size())
                return a.items.size() < b.items.size();
              return a.items < b.items;
            });
  return out;
}

}  // namespace fgp::apps
