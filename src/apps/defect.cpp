#include "apps/defect.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/check.h"
#include "util/simd.h"
#include "util/union_find.h"

namespace fgp::apps {

namespace {

constexpr std::uint8_t kNoDefect = 255;

/// Packs a lattice cell into one 64-bit key (coordinates < 2^20).
std::uint64_t cell_key(std::int64_t x, std::int64_t y, std::int64_t z) {
  return (static_cast<std::uint64_t>(x & 0xFFFFF) << 40) |
         (static_cast<std::uint64_t>(y & 0xFFFFF) << 20) |
         static_cast<std::uint64_t>(z & 0xFFFFF);
}

/// Sorts a structure's flattened cells as (x, y, z) triples.
void sort_cells(std::vector<std::int32_t>& cells) {
  FGP_CHECK(cells.size() % 3 == 0);
  const std::size_t n = cells.size() / 3;
  std::vector<std::array<std::int32_t, 3>> triples(n);
  for (std::size_t i = 0; i < n; ++i)
    triples[i] = {cells[3 * i], cells[3 * i + 1], cells[3 * i + 2]};
  std::sort(triples.begin(), triples.end());
  for (std::size_t i = 0; i < n; ++i) {
    cells[3 * i] = triples[i][0];
    cells[3 * i + 1] = triples[i][1];
    cells[3 * i + 2] = triples[i][2];
  }
}

/// Detection + local aggregation over one slab's cells. `kind_of` maps a
/// slab-local cell index to its defect kind (or kNoDefect).
std::vector<DefectStruct> aggregate_slab(
    const datagen::LatticeChunkHeader& h,
    const std::vector<std::uint8_t>& kind_of) {
  const std::size_t nx = h.nx, ny = h.ny, nz = h.zslabs;
  const std::size_t plane = nx * ny;
  const std::uint8_t* kind = kind_of.data();

  // Most lattice cells are defect-free, so both sweeps run over the
  // linear index and skip all-kNoDefect 8-cell groups with one 64-bit
  // compare.
  util::UnionFind uf(plane * nz);
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y) {
      const std::size_t base = (z * ny + y) * nx;
      for (std::size_t x = 0; x < nx;) {
        const std::size_t i = base + x;
        if (x + 8 <= nx && util::simd::all_bytes_equal8(kind + i, kNoDefect)) {
          x += 8;
          continue;
        }
        if (kind[i] != kNoDefect) {
          if (x + 1 < nx && kind[i + 1] == kind[i]) uf.unite(i, i + 1);
          if (y + 1 < ny && kind[i + nx] == kind[i]) uf.unite(i, i + nx);
          if (z + 1 < nz && kind[i + plane] == kind[i]) uf.unite(i, i + plane);
        }
        ++x;
      }
    }

  std::unordered_map<std::size_t, std::size_t> root_to_struct;
  std::vector<DefectStruct> out;
  for (std::size_t z = 0; z < nz; ++z)
    for (std::size_t y = 0; y < ny; ++y) {
      const std::size_t base = (z * ny + y) * nx;
      for (std::size_t x = 0; x < nx;) {
        const std::size_t i = base + x;
        if (x + 8 <= nx && util::simd::all_bytes_equal8(kind + i, kNoDefect)) {
          x += 8;
          continue;
        }
        if (kind[i] == kNoDefect) {
          ++x;
          continue;
        }
        const std::size_t root = uf.find(i);
        auto [it, inserted] = root_to_struct.try_emplace(root, out.size());
        if (inserted) {
          DefectStruct s;
          s.kind = kind[i];
          out.push_back(std::move(s));
        }
        auto& cells = out[it->second].cells;
        cells.push_back(static_cast<std::int32_t>(x));
        cells.push_back(static_cast<std::int32_t>(y));
        cells.push_back(static_cast<std::int32_t>(h.z0 + z));
        ++x;
      }
    }
  return out;
}

/// Marks every cell of one slab: occupancy count plus off-site flag.
std::vector<std::uint8_t> detect_slab(const datagen::LatticeChunkView& view) {
  const auto& h = view.header;
  const std::size_t cells =
      static_cast<std::size_t>(h.nx) * h.ny * h.zslabs;
  std::vector<std::uint16_t> occupancy(cells, 0);
  std::vector<std::uint8_t> displaced(cells, 0);
  const double tol2 = static_cast<double>(h.displacement_tol) *
                      static_cast<double>(h.displacement_tol);

  // std::lrint compiles to one conversion instruction; std::lround is a
  // libm call, and three of them per atom dominated this loop. The two
  // differ only for coordinates at an exact .5, which the lattice
  // generator never produces (displacement_tol < 0.5 bounds real atoms
  // away from half-way points, and planted offsets are 0.12/0.38/0.42).
  for (const auto& a : view.atoms) {
    const auto ix = static_cast<std::int64_t>(std::lrint(a.x));
    const auto iy = static_cast<std::int64_t>(std::lrint(a.y));
    const auto iz = static_cast<std::int64_t>(std::lrint(a.z));
    FGP_CHECK_MSG(ix >= 0 && ix < h.nx && iy >= 0 && iy < h.ny &&
                      iz >= h.z0 && iz < h.z0 + h.zslabs,
                  "atom outside its slab: (" << a.x << ", " << a.y << ", "
                                             << a.z << ")");
    const std::size_t i =
        ((static_cast<std::size_t>(iz - h.z0) * h.ny + iy) * h.nx) + ix;
    occupancy[i] += 1;
    const double dx = a.x - static_cast<double>(ix);
    const double dy = a.y - static_cast<double>(iy);
    const double dz = a.z - static_cast<double>(iz);
    if (dx * dx + dy * dy + dz * dz > tol2) displaced[i] = 1;
  }

  std::vector<std::uint8_t> kind_of(cells, kNoDefect);
  for (std::size_t i = 0; i < cells; ++i) {
    if (occupancy[i] == 0)
      kind_of[i] = static_cast<std::uint8_t>(datagen::DefectKind::Vacancy);
    else if (occupancy[i] >= 2)
      kind_of[i] =
          static_cast<std::uint8_t>(datagen::DefectKind::Interstitial);
    else if (displaced[i])
      kind_of[i] = static_cast<std::uint8_t>(datagen::DefectKind::Displaced);
  }
  return kind_of;
}

/// Joins structures whose same-kind cells are face-adjacent, then sorts
/// each joined structure's cells and the whole list by minimum cell.
std::vector<DefectStruct> join_structures(std::vector<DefectStruct> input) {
  std::unordered_map<std::uint64_t, std::size_t> owner;
  for (std::size_t i = 0; i < input.size(); ++i)
    for (std::size_t c = 0; c + 2 < input[i].cells.size() + 1; c += 3)
      owner.emplace(cell_key(input[i].cells[c], input[i].cells[c + 1],
                             input[i].cells[c + 2]),
                    i);

  util::UnionFind uf(input.size());
  static constexpr int kDirs[3][3] = {{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  for (std::size_t i = 0; i < input.size(); ++i) {
    for (std::size_t c = 0; c + 2 < input[i].cells.size() + 1; c += 3) {
      for (const auto& d : kDirs) {
        const auto it = owner.find(cell_key(input[i].cells[c] + d[0],
                                            input[i].cells[c + 1] + d[1],
                                            input[i].cells[c + 2] + d[2]));
        if (it != owner.end() && it->second != i &&
            input[it->second].kind == input[i].kind)
          uf.unite(i, it->second);
      }
    }
  }

  std::unordered_map<std::size_t, std::size_t> root_to_out;
  std::vector<DefectStruct> out;
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::size_t root = uf.find(i);
    auto [it, inserted] = root_to_out.try_emplace(root, out.size());
    if (inserted) {
      DefectStruct s;
      s.kind = input[i].kind;
      out.push_back(std::move(s));
    }
    auto& cells = out[it->second].cells;
    cells.insert(cells.end(), input[i].cells.begin(), input[i].cells.end());
  }
  for (auto& s : out) sort_cells(s.cells);
  std::sort(out.begin(), out.end(), [](const DefectStruct& a,
                                       const DefectStruct& b) {
    return a.cells < b.cells;
  });
  return out;
}

std::vector<CategorizedDefect> categorize(
    const std::vector<DefectStruct>& structures,
    std::map<DefectSignature, std::uint32_t>& catalog,
    std::uint32_t& next_class, int& new_classes) {
  std::vector<CategorizedDefect> out;
  for (const auto& s : structures) {
    const DefectSignature sig = defect_signature(s.kind, s.cells);
    auto [it, inserted] = catalog.try_emplace(sig, next_class);
    if (inserted) {
      ++next_class;
      ++new_classes;
    }
    CategorizedDefect cd;
    cd.class_id = it->second;
    cd.kind = s.kind;
    cd.cell_count = s.cells.size() / 3;
    cd.cells = s.cells;
    for (std::size_t c = 0; c + 2 < s.cells.size() + 1; c += 3) {
      cd.cx += s.cells[c];
      cd.cy += s.cells[c + 1];
      cd.cz += s.cells[c + 2];
    }
    cd.cx /= static_cast<double>(cd.cell_count);
    cd.cy /= static_cast<double>(cd.cell_count);
    cd.cz /= static_cast<double>(cd.cell_count);
    out.push_back(std::move(cd));
  }
  return out;
}

}  // namespace

DefectSignature defect_signature(std::uint8_t kind,
                                 const std::vector<std::int32_t>& cells) {
  FGP_CHECK(!cells.empty() && cells.size() % 3 == 0);
  std::int32_t mn[3] = {cells[0], cells[1], cells[2]};
  for (std::size_t c = 0; c < cells.size(); c += 3)
    for (int j = 0; j < 3; ++j) mn[j] = std::min(mn[j], cells[c + j]);
  DefectSignature sig;
  sig.reserve(cells.size() + 1);
  sig.push_back(static_cast<std::int32_t>(kind));
  for (std::size_t c = 0; c < cells.size(); c += 3)
    for (int j = 0; j < 3; ++j) sig.push_back(cells[c + j] - mn[j]);
  // Cells are kept sorted, so equal shapes produce equal signatures.
  return sig;
}

void DefectObject::serialize(util::ByteWriter& w) const {
  w.put_u64(structures.size());
  for (const auto& s : structures) {
    w.put<std::uint8_t>(s.kind);
    w.put_vector(s.cells);
  }
  w.put_u64(categorized.size());
  for (const auto& cd : categorized) {
    w.put_u32(cd.class_id);
    w.put<std::uint8_t>(cd.kind);
    w.put_u64(cd.cell_count);
    w.put_f64(cd.cx);
    w.put_f64(cd.cy);
    w.put_f64(cd.cz);
    w.put_vector(cd.cells);
  }
}

void DefectObject::deserialize(util::ByteReader& r) {
  structures.clear();
  categorized.clear();
  const std::uint64_t ns = r.get_count();
  structures.reserve(ns);
  for (std::uint64_t i = 0; i < ns; ++i) {
    DefectStruct s;
    s.kind = r.get<std::uint8_t>();
    s.cells = r.get_vector<std::int32_t>();
    structures.push_back(std::move(s));
  }
  const std::uint64_t nc = r.get_count();
  categorized.reserve(nc);
  for (std::uint64_t i = 0; i < nc; ++i) {
    CategorizedDefect cd;
    cd.class_id = r.get_u32();
    cd.kind = r.get<std::uint8_t>();
    cd.cell_count = r.get_u64();
    cd.cx = r.get_f64();
    cd.cy = r.get_f64();
    cd.cz = r.get_f64();
    cd.cells = r.get_vector<std::int32_t>();
    categorized.push_back(std::move(cd));
  }
}

DefectKernel::DefectKernel(DefectParams params)
    : catalog_(std::move(params.initial_catalog)) {
  for (const auto& [sig, id] : catalog_)
    next_class_ = std::max(next_class_, id + 1);
}

std::unique_ptr<freeride::ReductionObject> DefectKernel::create_object() const {
  return std::make_unique<DefectObject>();
}

sim::Work DefectKernel::process_chunk(const repository::Chunk& chunk,
                                      freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<DefectObject&>(obj);
  const auto view = datagen::parse_lattice_chunk(chunk);
  const auto kind_of = detect_slab(view);
  auto structures = aggregate_slab(view.header, kind_of);
  for (auto& s : structures) o.structures.push_back(std::move(s));

  // Occupancy binning, per-atom displacement checks and the neighbourhood
  // sweep are the dominant costs of detection; categorization adds a
  // per-cell aggregation pass.
  const double cells = static_cast<double>(kind_of.size());
  sim::Work w;
  w.flops = static_cast<double>(view.atoms.size()) * 40.0 + cells * 12.0;
  w.bytes = static_cast<double>(view.atoms.size()) * 2.0 *
                sizeof(datagen::Atom) +
            cells * 6.0;
  return w;
}

sim::Work DefectKernel::merge(freeride::ReductionObject& into,
                              const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<DefectObject&>(into);
  const auto& b = dynamic_cast<const DefectObject&>(other);
  double moved = 0.0;
  for (const auto& s : b.structures) {
    moved += static_cast<double>(s.cells.size() * sizeof(std::int32_t) + 8);
    a.structures.push_back(s);
  }
  sim::Work w;
  w.flops = static_cast<double>(b.structures.size()) * 2.0;
  w.bytes = moved * 2.0;
  return w;
}

sim::Work DefectKernel::global_reduce(freeride::ReductionObject& merged,
                                      bool& more_passes) {
  auto& o = dynamic_cast<DefectObject&>(merged);
  more_passes = false;
  new_classes_ = 0;

  double total_cells = 0.0;
  for (const auto& s : o.structures)
    total_cells += static_cast<double>(s.cells.size() / 3);

  auto joined = join_structures(o.structures);
  o.categorized = categorize(joined, catalog_, next_class_, new_classes_);

  sim::Work w;
  w.flops = total_cells * 10.0 +
            static_cast<double>(joined.size()) * 16.0;
  w.bytes = total_cells * sizeof(std::int32_t) * 6.0;
  return w;
}

double DefectKernel::broadcast_bytes() const {
  double bytes = 0.0;
  for (const auto& [sig, id] : catalog_)
    bytes += static_cast<double>(sig.size() * sizeof(std::int32_t) +
                                 sizeof(std::uint32_t));
  return bytes;
}

std::vector<CategorizedDefect> defect_reference(
    const datagen::LatticeDataset& lattice) {
  // Detect per slab exactly as the kernel does, then join and categorize
  // globally from an empty catalog.
  std::vector<DefectStruct> all;
  for (const auto& chunk : lattice.dataset.chunks()) {
    const auto view = datagen::parse_lattice_chunk(chunk);
    const auto kind_of = detect_slab(view);
    auto structures = aggregate_slab(view.header, kind_of);
    for (auto& s : structures) all.push_back(std::move(s));
  }
  auto joined = join_structures(std::move(all));
  std::map<DefectSignature, std::uint32_t> catalog;
  std::uint32_t next_class = 0;
  int new_classes = 0;
  return categorize(joined, catalog, next_class, new_classes);
}

}  // namespace fgp::apps
