// vortex3d.h — volumetric vortex detection on the FREERIDE-G reduction
// API: the 3-D realization of the paper's "volumetric regions" feature
// mining (§4.4).
//
// Same pipeline as the 2-D version — detection (curl magnitude above a
// threshold; the slab halos make the stencil communication-free),
// classification (sense of rotation about z), local aggregation
// (6-connected components per slab), global combination (join fragments
// across slab boundaries), de-noising and sorting — over 3-D velocity
// volumes chunked into z-slabs.
#pragma once

#include <memory>
#include <vector>

#include "datagen/flowfield3d.h"
#include "freeride/reduction.h"

namespace fgp::apps {

/// A vortical cell on the first or last owned plane of a slab.
struct BoundaryCell3d {
  std::int32_t z = 0, y = 0, x = 0;
};

/// A connected vortical region fragment local to one slab.
struct RegionFragment3d {
  std::int32_t sign = 0;
  std::uint64_t cells = 0;
  double sum_x = 0.0, sum_y = 0.0, sum_z = 0.0;
  std::vector<BoundaryCell3d> boundary;
};

/// A finished volumetric vortex after the global combination.
struct Vortex3d {
  double cx = 0.0, cy = 0.0, cz = 0.0;
  std::uint64_t cells = 0;
  std::int32_t sign = 0;
};

class Vortex3dObject final : public freeride::ReductionObject {
 public:
  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  std::vector<RegionFragment3d> fragments;
  std::vector<Vortex3d> vortices;  ///< filled by the global reduction
};

struct Vortex3dParams {
  double vorticity_threshold = 0.8;
  std::uint64_t min_cells = 32;  ///< volumetric de-noising threshold
};

class Vortex3dKernel final : public freeride::ReductionKernel {
 public:
  explicit Vortex3dKernel(Vortex3dParams params);

  std::string name() const override { return "vortex3d"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  bool reduction_object_scales_with_data() const override { return true; }

 private:
  Vortex3dParams params_;
};

/// Serial reference over the reassembled full volume.
std::vector<Vortex3d> vortex3d_reference(const datagen::Flow3dDataset& flow,
                                         const Vortex3dParams& params);

}  // namespace fgp::apps
