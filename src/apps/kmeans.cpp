#include "apps/kmeans.h"

#include <cmath>
#include <limits>

#include "util/check.h"

namespace fgp::apps {

void KMeansObject::serialize(util::ByteWriter& w) const {
  w.put_vector(sums_);
  w.put_vector(counts_);
  w.put_f64(sse);
}

void KMeansObject::deserialize(util::ByteReader& r) {
  sums_ = r.get_vector<double>();
  counts_ = r.get_vector<std::uint64_t>();
  sse = r.get_f64();
}

KMeansKernel::KMeansKernel(KMeansParams params) : params_(std::move(params)) {
  FGP_CHECK(params_.k > 0 && params_.dim > 0);
  FGP_CHECK_MSG(params_.initial_centers.size() ==
                    static_cast<std::size_t>(params_.k) * params_.dim,
                "initial_centers must be k x dim");
  centers_ = params_.initial_centers;
}

std::unique_ptr<freeride::ReductionObject> KMeansKernel::create_object() const {
  return std::make_unique<KMeansObject>(params_.k, params_.dim);
}

sim::Work KMeansKernel::process_chunk(const repository::Chunk& chunk,
                                      freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<KMeansObject&>(obj);
  const auto points = chunk.as_span<double>();
  const std::size_t d = static_cast<std::size_t>(params_.dim);
  FGP_CHECK_MSG(points.size() % d == 0,
                "chunk " << chunk.id() << " not a whole number of points");
  const std::size_t count = points.size() / d;
  const std::size_t k = static_cast<std::size_t>(params_.k);

  for (std::size_t p = 0; p < count; ++p) {
    const double* x = points.data() + p * d;
    double best = std::numeric_limits<double>::max();
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double* ctr = centers_.data() + c * d;
      double dist = 0.0;
      for (std::size_t j = 0; j < d; ++j) {
        const double diff = x[j] - ctr[j];
        dist += diff * diff;
      }
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    double* sum = o.sums_.data() + best_c * d;
    for (std::size_t j = 0; j < d; ++j) sum[j] += x[j];
    o.counts_[best_c] += 1;
    o.sse += best;
  }

  // 3 flops per coordinate per distance evaluation, plus the accumulation.
  sim::Work w;
  w.flops = static_cast<double>(count) * static_cast<double>(k) *
                static_cast<double>(d) * 3.0 +
            static_cast<double>(count) * static_cast<double>(d);
  w.bytes = static_cast<double>(count) * static_cast<double>(d) *
            sizeof(double);
  return w;
}

sim::Work KMeansKernel::merge(freeride::ReductionObject& into,
                              const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<KMeansObject&>(into);
  const auto& b = dynamic_cast<const KMeansObject&>(other);
  FGP_CHECK(a.sums_.size() == b.sums_.size());
  for (std::size_t i = 0; i < a.sums_.size(); ++i) a.sums_[i] += b.sums_[i];
  for (std::size_t i = 0; i < a.counts_.size(); ++i)
    a.counts_[i] += b.counts_[i];
  a.sse += b.sse;

  sim::Work w;
  w.flops = static_cast<double>(a.sums_.size() + a.counts_.size() + 1);
  w.bytes = static_cast<double>(a.sums_.size() * sizeof(double) * 2);
  return w;
}

sim::Work KMeansKernel::global_reduce(freeride::ReductionObject& merged,
                                      bool& more_passes) {
  auto& o = dynamic_cast<KMeansObject&>(merged);
  const std::size_t d = static_cast<std::size_t>(params_.dim);
  const std::size_t k = static_cast<std::size_t>(params_.k);

  double shift = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (o.counts_[c] == 0) continue;  // empty cluster keeps its centre
    for (std::size_t j = 0; j < d; ++j) {
      const double next =
          o.sums_[c * d + j] / static_cast<double>(o.counts_[c]);
      const double diff = next - centers_[c * d + j];
      shift += diff * diff;
      centers_[c * d + j] = next;
    }
  }
  sse_history_.push_back(o.sse);
  ++passes_run_;

  if (params_.fixed_passes > 0) {
    more_passes = passes_run_ < params_.fixed_passes;
  } else {
    more_passes = std::sqrt(shift) > params_.tol;
  }

  sim::Work w;
  w.flops = static_cast<double>(k * d * 3);
  w.bytes = static_cast<double>(k * d * sizeof(double) * 2);
  return w;
}

double KMeansKernel::broadcast_bytes() const {
  return static_cast<double>(centers_.size() * sizeof(double));
}

std::vector<double> initial_centers_from_dataset(
    const repository::ChunkedDataset& ds, int k, int dim) {
  FGP_CHECK(k > 0 && dim > 0);
  std::vector<double> centers;
  centers.reserve(static_cast<std::size_t>(k) * dim);
  for (const auto& chunk : ds.chunks()) {
    const auto pts = chunk.as_span<double>();
    for (std::size_t i = 0; i + dim <= pts.size();
         i += static_cast<std::size_t>(dim)) {
      for (int j = 0; j < dim; ++j) centers.push_back(pts[i + j]);
      if (centers.size() == static_cast<std::size_t>(k) * dim) return centers;
    }
  }
  throw util::Error("dataset holds fewer than k points");
}

std::vector<double> kmeans_reference(const std::vector<double>& points,
                                     int dim, int k,
                                     std::vector<double> centers, double tol,
                                     int max_passes,
                                     std::vector<double>* sse_history) {
  FGP_CHECK(dim > 0 && k > 0);
  const std::size_t d = static_cast<std::size_t>(dim);
  FGP_CHECK(points.size() % d == 0);
  const std::size_t count = points.size() / d;

  for (int pass = 0; pass < max_passes; ++pass) {
    std::vector<double> sums(static_cast<std::size_t>(k) * d, 0.0);
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(k), 0);
    double sse = 0.0;
    for (std::size_t p = 0; p < count; ++p) {
      const double* x = points.data() + p * d;
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
        double dist = 0.0;
        for (std::size_t j = 0; j < d; ++j) {
          const double diff = x[j] - centers[c * d + j];
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      for (std::size_t j = 0; j < d; ++j) sums[best_c * d + j] += x[j];
      counts[best_c] += 1;
      sse += best;
    }
    if (sse_history) sse_history->push_back(sse);

    double shift = 0.0;
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        const double next = sums[c * d + j] / static_cast<double>(counts[c]);
        const double diff = next - centers[c * d + j];
        shift += diff * diff;
        centers[c * d + j] = next;
      }
    }
    if (std::sqrt(shift) <= tol) break;
  }
  return centers;
}

}  // namespace fgp::apps
