#include "apps/kmeans.h"

#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/simd.h"

namespace fgp::apps {

void KMeansObject::serialize(util::ByteWriter& w) const {
  w.put_vector(sums_);
  w.put_vector(counts_);
  w.put_f64(sse);
}

void KMeansObject::deserialize(util::ByteReader& r) {
  sums_ = r.get_vector<double>();
  counts_ = r.get_vector<std::uint64_t>();
  sse = r.get_f64();
}

KMeansKernel::KMeansKernel(KMeansParams params) : params_(std::move(params)) {
  FGP_CHECK(params_.k > 0 && params_.dim > 0);
  FGP_CHECK_MSG(params_.initial_centers.size() ==
                    static_cast<std::size_t>(params_.k) * params_.dim,
                "initial_centers must be k x dim");
  centers_ = params_.initial_centers;
}

std::unique_ptr<freeride::ReductionObject> KMeansKernel::create_object() const {
  return std::make_unique<KMeansObject>(params_.k, params_.dim);
}

sim::Work KMeansKernel::process_chunk(const repository::Chunk& chunk,
                                      freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<KMeansObject&>(obj);
  const auto points = chunk.as_span<double>();
  const std::size_t d = static_cast<std::size_t>(params_.dim);
  FGP_CHECK_MSG(points.size() % d == 0,
                "chunk " << chunk.id() << " not a whole number of points");
  const std::size_t count = points.size() / d;
  const std::size_t k = static_cast<std::size_t>(params_.k);

  const double* centers = centers_.data();
  double* sums = o.sums_.data();
  const double* x = points.data();
  // Four-point tiles: every centre row is loaded once per tile and the
  // four per-point accumulation chains run independently. Per-point
  // distance bits equal the serial scalar order (see util/simd.h).
  std::size_t p = 0;
  constexpr std::size_t tile = util::simd::kPointTile;
  for (; p + tile <= count; p += tile, x += tile * d) {
    // The four argmin chains are named scalars (not arrays) so they live
    // in registers: a variable-indexed best[t] would force the distances
    // through the stack on every centre and lose the tiling win.
    constexpr double kInf = std::numeric_limits<double>::max();
    double best0 = kInf, best1 = kInf, best2 = kInf, best3 = kInf;
    std::size_t bc0 = 0, bc1 = 0, bc2 = 0, bc3 = 0;
    const double* ctr = centers;
    for (std::size_t c = 0; c < k; ++c, ctr += d) {
      double dist[tile];
      util::simd::squared_distance_x4(x, d, ctr, d, dist);
      if (dist[0] < best0) { best0 = dist[0]; bc0 = c; }
      if (dist[1] < best1) { best1 = dist[1]; bc1 = c; }
      if (dist[2] < best2) { best2 = dist[2]; bc2 = c; }
      if (dist[3] < best3) { best3 = dist[3]; bc3 = c; }
    }
    const double best[tile] = {best0, best1, best2, best3};
    const std::size_t best_c[tile] = {bc0, bc1, bc2, bc3};
    for (std::size_t t = 0; t < tile; ++t) {
      util::simd::accumulate(sums + best_c[t] * d, x + t * d, d);
      o.counts_[best_c[t]] += 1;
      o.sse += best[t];
    }
  }
  for (; p < count; ++p, x += d) {
    double best = std::numeric_limits<double>::max();
    std::size_t best_c = 0;
    const double* ctr = centers;
    for (std::size_t c = 0; c < k; ++c, ctr += d) {
      const double dist = util::simd::squared_distance_serial(x, ctr, d);
      if (dist < best) {
        best = dist;
        best_c = c;
      }
    }
    util::simd::accumulate(sums + best_c * d, x, d);
    o.counts_[best_c] += 1;
    o.sse += best;
  }

  // 3 flops per coordinate per distance evaluation, plus the accumulation.
  sim::Work w;
  w.flops = static_cast<double>(count) * static_cast<double>(k) *
                static_cast<double>(d) * 3.0 +
            static_cast<double>(count) * static_cast<double>(d);
  w.bytes = static_cast<double>(count) * static_cast<double>(d) *
            sizeof(double);
  return w;
}

sim::Work KMeansKernel::merge(freeride::ReductionObject& into,
                              const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<KMeansObject&>(into);
  const auto& b = dynamic_cast<const KMeansObject&>(other);
  FGP_CHECK(a.sums_.size() == b.sums_.size());
  for (std::size_t i = 0; i < a.sums_.size(); ++i) a.sums_[i] += b.sums_[i];
  for (std::size_t i = 0; i < a.counts_.size(); ++i)
    a.counts_[i] += b.counts_[i];
  a.sse += b.sse;

  sim::Work w;
  w.flops = static_cast<double>(a.sums_.size() + a.counts_.size() + 1);
  w.bytes = static_cast<double>(a.sums_.size() * sizeof(double) * 2);
  return w;
}

sim::Work KMeansKernel::global_reduce(freeride::ReductionObject& merged,
                                      bool& more_passes) {
  auto& o = dynamic_cast<KMeansObject&>(merged);
  const std::size_t d = static_cast<std::size_t>(params_.dim);
  const std::size_t k = static_cast<std::size_t>(params_.k);

  double shift = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (o.counts_[c] == 0) continue;  // empty cluster keeps its centre
    for (std::size_t j = 0; j < d; ++j) {
      const double next =
          o.sums_[c * d + j] / static_cast<double>(o.counts_[c]);
      const double diff = next - centers_[c * d + j];
      shift += diff * diff;
      centers_[c * d + j] = next;
    }
  }
  sse_history_.push_back(o.sse);
  ++passes_run_;

  if (params_.fixed_passes > 0) {
    more_passes = passes_run_ < params_.fixed_passes;
  } else {
    more_passes = std::sqrt(shift) > params_.tol;
  }

  sim::Work w;
  w.flops = static_cast<double>(k * d * 3);
  w.bytes = static_cast<double>(k * d * sizeof(double) * 2);
  return w;
}

double KMeansKernel::broadcast_bytes() const {
  return static_cast<double>(centers_.size() * sizeof(double));
}

std::vector<double> initial_centers_from_dataset(
    const repository::ChunkedDataset& ds, int k, int dim) {
  FGP_CHECK(k > 0 && dim > 0);
  std::vector<double> centers;
  centers.reserve(static_cast<std::size_t>(k) * dim);
  for (const auto& chunk : ds.chunks()) {
    const auto pts = chunk.as_span<double>();
    for (std::size_t i = 0; i + dim <= pts.size();
         i += static_cast<std::size_t>(dim)) {
      for (int j = 0; j < dim; ++j) centers.push_back(pts[i + j]);
      if (centers.size() == static_cast<std::size_t>(k) * dim) return centers;
    }
  }
  throw util::Error("dataset holds fewer than k points");
}

std::vector<double> kmeans_reference(const std::vector<double>& points,
                                     int dim, int k,
                                     std::vector<double> centers, double tol,
                                     int max_passes,
                                     std::vector<double>* sse_history) {
  FGP_CHECK(dim > 0 && k > 0);
  const std::size_t d = static_cast<std::size_t>(dim);
  FGP_CHECK(points.size() % d == 0);
  const std::size_t count = points.size() / d;

  for (int pass = 0; pass < max_passes; ++pass) {
    std::vector<double> sums(static_cast<std::size_t>(k) * d, 0.0);
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(k), 0);
    double sse = 0.0;
    for (std::size_t p = 0; p < count; ++p) {
      const double* x = points.data() + p * d;
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
        // Serial coordinate order — the kernel's tiled fast path keeps the
        // same per-point bits, so exact comparisons against this hold.
        const double dist = util::simd::squared_distance_serial(
            x, centers.data() + c * d, d);
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      util::simd::accumulate(sums.data() + best_c * d, x, d);
      counts[best_c] += 1;
      sse += best;
    }
    if (sse_history) sse_history->push_back(sse);

    double shift = 0.0;
    for (std::size_t c = 0; c < static_cast<std::size_t>(k); ++c) {
      if (counts[c] == 0) continue;
      for (std::size_t j = 0; j < d; ++j) {
        const double next = sums[c * d + j] / static_cast<double>(counts[c]);
        const double diff = next - centers[c * d + j];
        shift += diff * diff;
        centers[c * d + j] = next;
      }
    }
    if (std::sqrt(shift) <= tol) break;
  }
  return centers;
}

}  // namespace fgp::apps
