// ann.h — artificial neural network training on the FREERIDE-G reduction
// API (paper §2.2 lists "artificial neural networks" among the canonical
// generalized-reduction algorithms).
//
// A one-hidden-layer classifier (tanh hidden units, softmax output)
// trained by full-batch gradient descent: each pass, every node
// accumulates the gradient of the cross-entropy loss over its local
// labeled points into the reduction object (constant size — the weight
// shapes); the global reduction sums node gradients, applies the update,
// and broadcasts the new weights for the next pass.
#pragma once

#include <memory>
#include <vector>

#include "freeride/reduction.h"
#include "repository/dataset.h"

namespace fgp::apps {

/// Gradient accumulator mirroring the network's parameter shapes.
class AnnObject final : public freeride::ReductionObject {
 public:
  AnnObject() = default;
  AnnObject(int dim, int hidden, int classes);

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  std::vector<double> grad_w1, grad_b1, grad_w2, grad_b2;
  double loss = 0.0;
  std::uint64_t examples = 0;
};

struct AnnParams {
  int dim = 8;
  int hidden = 16;
  int classes = 4;
  double learning_rate = 0.5;  ///< applied to the mean gradient
  int fixed_passes = 20;
  std::uint64_t seed = 5;  ///< weight initialization
};

class AnnKernel final : public freeride::ReductionKernel {
 public:
  explicit AnnKernel(AnnParams params);

  std::string name() const override { return "ann"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  double broadcast_bytes() const override;
  bool reduction_object_scales_with_data() const override { return false; }

  /// Mean cross-entropy loss after each pass.
  const std::vector<double>& loss_history() const { return loss_history_; }
  int passes_run() const { return passes_run_; }

  /// Classifies one feature vector with the current weights.
  std::int32_t predict(const double* x) const;

 private:
  /// Forward pass; fills `hidden_out` (tanh activations) and
  /// `class_probs` (softmax). Returns the argmax class.
  std::int32_t forward(const double* x, std::vector<double>& hidden_out,
                       std::vector<double>& class_probs) const;

  AnnParams params_;
  std::vector<double> w1_, b1_, w2_, b2_;
  std::vector<double> loss_history_;
  int passes_run_ = 0;
};

/// Serial reference: identical full-batch gradient descent over all rows
/// ([label, features...] layout). Returns the loss history.
std::vector<double> ann_reference(const std::vector<double>& rows,
                                  const AnnParams& params);

}  // namespace fgp::apps
