#include "apps/ann.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"
#include "util/simd.h"

namespace fgp::apps {

namespace {

/// Per-example working buffers, allocated once per chunk (or pass) and
/// reused — the scalar version allocated four vectors per training example.
struct AnnScratch {
  std::vector<double> a1, p, dz1, dz2;

  explicit AnnScratch(int hidden, int classes)
      : a1(static_cast<std::size_t>(hidden)),
        p(static_cast<std::size_t>(classes)),
        dz1(static_cast<std::size_t>(hidden)),
        dz2(static_cast<std::size_t>(classes)) {}
};

void init_weights(const AnnParams& p, std::vector<double>& w1,
                  std::vector<double>& b1, std::vector<double>& w2,
                  std::vector<double>& b2) {
  util::Rng rng(p.seed);
  const auto d = static_cast<std::size_t>(p.dim);
  const auto h = static_cast<std::size_t>(p.hidden);
  const auto c = static_cast<std::size_t>(p.classes);
  w1.resize(d * h);
  b1.assign(h, 0.0);
  w2.resize(h * c);
  b2.assign(c, 0.0);
  const double s1 = 1.0 / std::sqrt(static_cast<double>(d));
  const double s2 = 1.0 / std::sqrt(static_cast<double>(h));
  for (auto& w : w1) w = rng.uniform(-s1, s1);
  for (auto& w : w2) w = rng.uniform(-s2, s2);
}

/// Forward + backward for one example; accumulates gradients into `o` and
/// returns the example's cross-entropy loss. Both layer multiplies run
/// with the contiguous dimension innermost (per-output accumulation order
/// over the summed dimension is unchanged, so results match the previous
/// loop nest bit-for-bit where the old order was sequential).
double backprop_example(const double* x, std::int32_t label,
                        const std::vector<double>& w1,
                        const std::vector<double>& b1,
                        const std::vector<double>& w2,
                        const std::vector<double>& b2, int dim, int hidden,
                        int classes, AnnScratch& s, AnnObject& o) {
  const auto d = static_cast<std::size_t>(dim);
  const auto h = static_cast<std::size_t>(hidden);
  const auto cc = static_cast<std::size_t>(classes);

  // Forward: z1 = W1^T x + b1, accumulated row-by-row so the inner loop
  // streams over contiguous w1 rows.
  std::vector<double>& a1 = s.a1;
  std::copy(b1.begin(), b1.end(), a1.begin());
  for (std::size_t j = 0; j < d; ++j)
    util::simd::axpy(a1.data(), x[j], w1.data() + j * h, h);
  for (std::size_t k = 0; k < h; ++k) a1[k] = std::tanh(a1[k]);

  std::vector<double>& p = s.p;
  std::copy(b2.begin(), b2.end(), p.begin());
  for (std::size_t k = 0; k < h; ++k)
    util::simd::axpy(p.data(), a1[k], w2.data() + k * cc, cc);
  double zmax = -1e300;
  for (std::size_t c = 0; c < cc; ++c) zmax = std::max(zmax, p[c]);
  double sum = 0.0;
  for (std::size_t c = 0; c < cc; ++c) {
    p[c] = std::exp(p[c] - zmax);
    sum += p[c];
  }
  for (std::size_t c = 0; c < cc; ++c) p[c] /= sum;
  FGP_CHECK_MSG(label >= 0 && label < classes,
                "label " << label << " outside [0, " << classes << ")");
  const double loss = -std::log(std::max(p[static_cast<std::size_t>(label)],
                                         1e-300));

  // Backward.
  std::vector<double>& dz2 = s.dz2;
  for (std::size_t c = 0; c < cc; ++c)
    dz2[c] = p[c] - (static_cast<std::int32_t>(c) == label ? 1.0 : 0.0);
  for (std::size_t k = 0; k < h; ++k)
    util::simd::axpy(o.grad_w2.data() + k * cc, a1[k], dz2.data(), cc);
  util::simd::accumulate(o.grad_b2.data(), dz2.data(), cc);

  std::vector<double>& dz1 = s.dz1;
  for (std::size_t k = 0; k < h; ++k) {
    const double da = util::simd::dot(w2.data() + k * cc, dz2.data(), cc);
    dz1[k] = da * (1.0 - a1[k] * a1[k]);
  }
  for (std::size_t j = 0; j < d; ++j)
    util::simd::axpy(o.grad_w1.data() + j * h, x[j], dz1.data(), h);
  util::simd::accumulate(o.grad_b1.data(), dz1.data(), h);
  return loss;
}

}  // namespace

AnnObject::AnnObject(int dim, int hidden, int classes)
    : grad_w1(static_cast<std::size_t>(dim) * hidden),
      grad_b1(static_cast<std::size_t>(hidden)),
      grad_w2(static_cast<std::size_t>(hidden) * classes),
      grad_b2(static_cast<std::size_t>(classes)) {}

void AnnObject::serialize(util::ByteWriter& w) const {
  w.put_vector(grad_w1);
  w.put_vector(grad_b1);
  w.put_vector(grad_w2);
  w.put_vector(grad_b2);
  w.put_f64(loss);
  w.put_u64(examples);
}

void AnnObject::deserialize(util::ByteReader& r) {
  grad_w1 = r.get_vector<double>();
  grad_b1 = r.get_vector<double>();
  grad_w2 = r.get_vector<double>();
  grad_b2 = r.get_vector<double>();
  loss = r.get_f64();
  examples = r.get_u64();
}

AnnKernel::AnnKernel(AnnParams params) : params_(params) {
  FGP_CHECK(params_.dim > 0 && params_.hidden > 0 && params_.classes > 1);
  FGP_CHECK(params_.learning_rate > 0.0);
  FGP_CHECK(params_.fixed_passes >= 1);
  init_weights(params_, w1_, b1_, w2_, b2_);
}

std::unique_ptr<freeride::ReductionObject> AnnKernel::create_object() const {
  return std::make_unique<AnnObject>(params_.dim, params_.hidden,
                                     params_.classes);
}

sim::Work AnnKernel::process_chunk(const repository::Chunk& chunk,
                                   freeride::ReductionObject& obj) const {
  auto& o = dynamic_cast<AnnObject&>(obj);
  const auto rows = chunk.as_span<double>();
  const std::size_t row = static_cast<std::size_t>(params_.dim) + 1;
  FGP_CHECK_MSG(rows.size() % row == 0,
                "chunk " << chunk.id() << " not labeled rows of dim+1");
  const std::size_t count = rows.size() / row;

  AnnScratch scratch(params_.hidden, params_.classes);
  for (std::size_t p = 0; p < count; ++p) {
    const double* r = rows.data() + p * row;
    o.loss += backprop_example(r + 1, static_cast<std::int32_t>(r[0]), w1_,
                               b1_, w2_, b2_, params_.dim, params_.hidden,
                               params_.classes, scratch, o);
  }
  o.examples += count;

  // Forward + backward touch every weight ~4 times per example.
  sim::Work w;
  const double weights = static_cast<double>(w1_.size() + w2_.size());
  w.flops = static_cast<double>(count) * weights * 4.0;
  w.bytes = static_cast<double>(count) * row * sizeof(double) +
            static_cast<double>(count) * weights * sizeof(double) * 0.5;
  return w;
}

sim::Work AnnKernel::merge(freeride::ReductionObject& into,
                           const freeride::ReductionObject& other) const {
  auto& a = dynamic_cast<AnnObject&>(into);
  const auto& b = dynamic_cast<const AnnObject&>(other);
  for (std::size_t i = 0; i < a.grad_w1.size(); ++i)
    a.grad_w1[i] += b.grad_w1[i];
  for (std::size_t i = 0; i < a.grad_b1.size(); ++i)
    a.grad_b1[i] += b.grad_b1[i];
  for (std::size_t i = 0; i < a.grad_w2.size(); ++i)
    a.grad_w2[i] += b.grad_w2[i];
  for (std::size_t i = 0; i < a.grad_b2.size(); ++i)
    a.grad_b2[i] += b.grad_b2[i];
  a.loss += b.loss;
  a.examples += b.examples;
  sim::Work w;
  w.flops = static_cast<double>(a.grad_w1.size() + a.grad_w2.size());
  w.bytes = w.flops * sizeof(double) * 2.0;
  return w;
}

sim::Work AnnKernel::global_reduce(freeride::ReductionObject& merged,
                                   bool& more_passes) {
  auto& o = dynamic_cast<AnnObject&>(merged);
  FGP_CHECK_MSG(o.examples > 0, "ANN pass saw no examples");
  const double scale =
      params_.learning_rate / static_cast<double>(o.examples);
  for (std::size_t i = 0; i < w1_.size(); ++i) w1_[i] -= scale * o.grad_w1[i];
  for (std::size_t i = 0; i < b1_.size(); ++i) b1_[i] -= scale * o.grad_b1[i];
  for (std::size_t i = 0; i < w2_.size(); ++i) w2_[i] -= scale * o.grad_w2[i];
  for (std::size_t i = 0; i < b2_.size(); ++i) b2_[i] -= scale * o.grad_b2[i];
  loss_history_.push_back(o.loss / static_cast<double>(o.examples));
  ++passes_run_;
  more_passes = passes_run_ < params_.fixed_passes;

  sim::Work w;
  w.flops = static_cast<double>(w1_.size() + w2_.size()) * 2.0;
  w.bytes = w.flops * sizeof(double);
  return w;
}

double AnnKernel::broadcast_bytes() const {
  return static_cast<double>(
      (w1_.size() + b1_.size() + w2_.size() + b2_.size()) * sizeof(double));
}

std::int32_t AnnKernel::forward(const double* x, std::vector<double>& a1,
                                std::vector<double>& p) const {
  const auto d = static_cast<std::size_t>(params_.dim);
  const auto h = static_cast<std::size_t>(params_.hidden);
  const auto cc = static_cast<std::size_t>(params_.classes);
  a1.resize(h);
  // The two strided dot products below are serial per output unit, so
  // their accumulation order is already pinned; simd::dot cannot be used
  // because w1_/w2_ are laid out column-major (stride h / cc).
  for (std::size_t k = 0; k < h; ++k) {
    double z = b1_[k];
    for (std::size_t j = 0; j < d; ++j)
      z += w1_[j * h + k] * x[j];  // fgpcheck: allow(float-accumulation)
    a1[k] = std::tanh(z);
  }
  p.resize(cc);
  std::int32_t best = 0;
  for (std::size_t c = 0; c < cc; ++c) {
    double z = b2_[c];
    for (std::size_t k = 0; k < h; ++k)
      z += w2_[k * cc + c] * a1[k];  // fgpcheck: allow(float-accumulation)
    p[c] = z;
    if (z > p[static_cast<std::size_t>(best)])
      best = static_cast<std::int32_t>(c);
  }
  return best;
}

std::int32_t AnnKernel::predict(const double* x) const {
  std::vector<double> a1, p;
  return forward(x, a1, p);
}

std::vector<double> ann_reference(const std::vector<double>& rows,
                                  const AnnParams& params) {
  std::vector<double> w1, b1, w2, b2;
  init_weights(params, w1, b1, w2, b2);
  const std::size_t row = static_cast<std::size_t>(params.dim) + 1;
  FGP_CHECK(rows.size() % row == 0);
  const std::size_t count = rows.size() / row;
  FGP_CHECK(count > 0);

  std::vector<double> history;
  AnnScratch scratch(params.hidden, params.classes);
  for (int pass = 0; pass < params.fixed_passes; ++pass) {
    AnnObject grads(params.dim, params.hidden, params.classes);
    for (std::size_t p = 0; p < count; ++p) {
      const double* r = rows.data() + p * row;
      grads.loss += backprop_example(r + 1, static_cast<std::int32_t>(r[0]),
                                     w1, b1, w2, b2, params.dim,
                                     params.hidden, params.classes, scratch,
                                     grads);
    }
    const double scale =
        params.learning_rate / static_cast<double>(count);
    for (std::size_t i = 0; i < w1.size(); ++i) w1[i] -= scale * grads.grad_w1[i];
    for (std::size_t i = 0; i < b1.size(); ++i) b1[i] -= scale * grads.grad_b1[i];
    for (std::size_t i = 0; i < w2.size(); ++i) w2[i] -= scale * grads.grad_w2[i];
    for (std::size_t i = 0; i < b2.size(); ++i) b2[i] -= scale * grads.grad_b2[i];
    history.push_back(grads.loss / static_cast<double>(count));
  }
  return history;
}

}  // namespace fgp::apps
