// knn.h — k-nearest-neighbour search on the FREERIDE-G reduction API
// (paper §4.3).
//
// Training samples are distributed across nodes; each node finds the k
// nearest neighbours of every query among its local samples; the global
// reduction merges per-node k-lists. The reduction object (m queries x k
// neighbours) has *constant* size, and the global reduction is the
// "linear-constant" class (merge cost scales with node count, not data).
#pragma once

#include <memory>
#include <vector>

#include "freeride/reduction.h"
#include "repository/dataset.h"

namespace fgp::apps {

/// Per-query sorted k-lists: distances ascending, +inf padding, with the
/// matching neighbour coordinates.
class KnnObject final : public freeride::ReductionObject {
 public:
  KnnObject() = default;
  KnnObject(int num_queries, int k, int dim);

  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  /// Inserts a candidate neighbour for query q; keeps the list sorted.
  void insert(std::size_t q, double dist, const double* point);

  /// Squared distance of the current kth neighbour of query q.
  double kth_distance(std::size_t q) const;

  int num_queries = 0;
  int k = 0;
  int dim = 0;
  std::vector<double> dists;   ///< [num_queries x k], ascending per query
  std::vector<double> coords;  ///< [num_queries x k x dim]
};

struct KnnParams {
  std::vector<double> queries;  ///< row-major [m x dim]
  int k = 8;
  int dim = 8;
};

class KnnKernel final : public freeride::ReductionKernel {
 public:
  explicit KnnKernel(KnnParams params);

  std::string name() const override { return "knn"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  bool reduction_object_scales_with_data() const override { return false; }

  int num_queries() const;

 private:
  KnnParams params_;
};

/// Serial brute-force reference: the exact sorted k-nearest distances of
/// one query among all points.
std::vector<double> knn_reference(const std::vector<double>& points, int dim,
                                  const double* query, int k);

}  // namespace fgp::apps
