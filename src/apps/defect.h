// defect.h — molecular defect detection and categorization on the
// FREERIDE-G reduction API (paper §4.5, after Mehta et al.).
//
// Detection marks lattice cells as defective (vacancy: unoccupied site;
// interstitial: doubly-occupied cell; displaced: atom off its site beyond
// the tolerance) and clusters them into defect structures locally per
// z-slab. The global combination joins structures spanning slabs, then
// the categorization phase matches each structure's translation-normalized
// shape signature against the defect catalog — unmatched shapes get new
// class ids (the paper's "defect catalog update"), and the updated catalog
// is re-broadcast to the compute nodes.
//
// The reduction object carries every local defect structure, so its size
// tracks local data — "linear object size" class, "constant-linear" global
// reduction class.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "datagen/lattice.h"
#include "freeride/reduction.h"

namespace fgp::apps {

/// One (possibly partial) defect structure: its kind and the absolute
/// lattice cells it occupies, stored as flattened (x, y, z) triples.
struct DefectStruct {
  std::uint8_t kind = 0;  ///< datagen::DefectKind
  std::vector<std::int32_t> cells;
};

/// A categorized defect after the global combine.
struct CategorizedDefect {
  std::uint32_t class_id = 0;
  std::uint8_t kind = 0;
  std::uint64_t cell_count = 0;
  double cx = 0.0, cy = 0.0, cz = 0.0;
  std::vector<std::int32_t> cells;  ///< flattened (x, y, z) triples
};

class DefectObject final : public freeride::ReductionObject {
 public:
  void serialize(util::ByteWriter& w) const override;
  void deserialize(util::ByteReader& r) override;

  std::vector<DefectStruct> structures;
  /// Filled by the global reduction.
  std::vector<CategorizedDefect> categorized;
};

/// Translation-normalized shape signature: kind, then the sorted cell
/// offsets relative to the structure's minimum corner.
using DefectSignature = std::vector<std::int32_t>;
DefectSignature defect_signature(std::uint8_t kind,
                                 const std::vector<std::int32_t>& cells);

struct DefectParams {
  /// Pre-seeded catalog entries (signature -> class id); usually empty.
  std::map<DefectSignature, std::uint32_t> initial_catalog;
};

class DefectKernel final : public freeride::ReductionKernel {
 public:
  explicit DefectKernel(DefectParams params = {});

  std::string name() const override { return "defect"; }
  std::unique_ptr<freeride::ReductionObject> create_object() const override;
  sim::Work process_chunk(const repository::Chunk& chunk,
                          freeride::ReductionObject& obj) const override;
  sim::Work merge(freeride::ReductionObject& into,
                  const freeride::ReductionObject& other) const override;
  sim::Work global_reduce(freeride::ReductionObject& merged,
                          bool& more_passes) override;
  double broadcast_bytes() const override;
  bool reduction_object_scales_with_data() const override { return true; }

  const std::map<DefectSignature, std::uint32_t>& catalog() const {
    return catalog_;
  }
  /// Classes added by the latest global reduction (catalog updates).
  int new_classes() const { return new_classes_; }

 private:
  std::map<DefectSignature, std::uint32_t> catalog_;
  std::uint32_t next_class_ = 0;
  int new_classes_ = 0;
};

/// Serial reference: detection + join + categorization over the whole
/// lattice with a single global pass. Returns categorized defects sorted
/// by minimum cell, with classes assigned in that order from an empty
/// catalog.
std::vector<CategorizedDefect> defect_reference(
    const datagen::LatticeDataset& lattice);

}  // namespace fgp::apps
