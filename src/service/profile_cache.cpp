#include "service/profile_cache.h"

#include <utility>

#include "core/ipc_probe.h"
#include "util/check.h"

namespace fgp::service {

core::PredictedTime SitePredictor::predict(
    const core::ProfileConfig& target) const {
  FGP_ASSERT(predictable());
  if (same_.has_value()) return same_->predict(target);
  return hetero_->predict(target);
}

void ProfileCache::register_app(
    core::Profile profile, core::PredictorOptions options,
    std::map<std::string, core::ScalingFactors> scalers) {
  FGP_CHECK_MSG(!profile.app.empty(), "profile needs an app name");
  // Constructing a throwaway Predictor validates the profile up front, so
  // a bad registration fails here instead of on the first query.
  [[maybe_unused]] const core::Predictor validate(profile, options);
  // Copy the key out first: the RHS (which moves `profile`) is sequenced
  // *before* the subscript under C++17 assignment rules.
  std::string app = profile.app;
  const std::lock_guard<std::mutex> lock(mu_);
  apps_[std::move(app)] =
      AppEntry{std::move(profile), options, std::move(scalers), nullptr};
}

std::shared_ptr<const CompiledApp> ProfileCache::resolve(
    const std::string& app, const std::shared_ptr<const Topology>& topo,
    unsigned long long* hit, unsigned long long* miss) {
  FGP_CHECK_MSG(topo != nullptr, "resolve needs a topology snapshot");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = apps_.find(app);
  if (it == apps_.end()) return nullptr;
  AppEntry& entry = it->second;
  if (entry.compiled != nullptr &&
      entry.compiled->topology->version == topo->version) {
    if (hit != nullptr) ++*hit;
    return entry.compiled;
  }
  if (miss != nullptr) ++*miss;

  auto compiled = std::make_shared<CompiledApp>();
  compiled->app = app;
  compiled->topology = topo;
  compiled->profile = entry.profile;
  compiled->site_predictors.reserve(topo->compute_sites.size());
  for (const auto& site : topo->compute_sites) {
    if (site.cluster.name == entry.profile.config.compute_cluster) {
      // Same hardware as the profile: probe the interconnect once here
      // instead of once per candidate (the ResourceSelector hot-path
      // cost this cache exists to remove).
      core::PredictorOptions opts = entry.options;
      opts.ipc = core::measure_ipc(site.cluster);
      compiled->site_predictors.emplace_back(
          core::Predictor(entry.profile, opts));
    } else if (const auto sit = entry.scalers.find(site.cluster.name);
               sit != entry.scalers.end()) {
      compiled->site_predictors.emplace_back(core::HeteroPredictor(
          core::Predictor(entry.profile, entry.options), sit->second));
    } else {
      compiled->site_predictors.emplace_back();  // unpredictable
    }
  }
  entry.compiled = std::move(compiled);
  return entry.compiled;
}

std::size_t ProfileCache::registered_apps() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return apps_.size();
}

}  // namespace fgp::service
