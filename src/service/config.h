// config.h — external configuration surface of the selection service.
//
// A deployed prediction service is driven by files: a service config
// (shard count, batch limits) and query batches submitted as JSON. Both
// arrive from outside the trust boundary, so parsing follows the
// repository's hostile-bytes contract (DESIGN.md §8, tests/test_fuzz.cpp):
// malformed documents throw util::SerializationError, documents that
// parse but violate a documented constraint throw util::ConfigError, and
// nothing crashes or hangs. The JSON layer is obs::json — the same
// bounded-recursion parser the report files go through.
#pragma once

#include <string_view>
#include <vector>

#include "service/selection_service.h"

namespace fgp::service {

struct ServiceConfig {
  /// Shard count for the replica catalog (ShardedCatalog bounds:
  /// [1, 4096]).
  int shards = 16;
  /// Upper bound a single query's top_k may request.
  int max_top_k = 64;
  /// Upper bound on queries per submitted batch.
  int max_batch = 65536;
  /// Slow-query log threshold in seconds: queries whose wall-clock
  /// latency strictly exceeds this are logged (obs::SlowQueryLog). The
  /// default flags ~40x the expected per-query cost on the reference
  /// runner; 0 logs every query.
  double slow_query_threshold_s = 0.001;
  /// Slow-query log ring capacity (newest entries survive).
  int slowlog_capacity = 128;
};

/// Parses `{"shards": N, "max_top_k": N, "max_batch": N,
/// "slow_query_threshold_s": X, "slowlog_capacity": N}` (every field
/// optional, defaults above; unknown fields rejected so a typo cannot
/// silently configure nothing).
ServiceConfig parse_service_config(std::string_view json_text);

/// Parses a query batch:
///   [{"app": "...", "dataset": "...", "dataset_bytes": N,
///     "top_k": N}, ...]
/// top_k is optional (default 1). Enforces `config` limits: batch size,
/// top_k bound, positive finite dataset_bytes, non-empty names.
std::vector<SelectionQuery> parse_query_batch(std::string_view json_text,
                                              const ServiceConfig& config);

}  // namespace fgp::service
