#include "service/selection_service.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <utility>

#include "obs/hdr.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/wallclock.h"

namespace fgp::service {

namespace {

/// Deterministic total order on ranked candidates: predicted total time,
/// then the candidate's identity. std::sort is not stable, so without the
/// identity tie-break two equal-cost candidates could legally come back
/// in either order — the bit-identity contract needs exactly one.
bool ranked_less(const core::RankedCandidate& a,
                 const core::RankedCandidate& b) {
  const double ta = a.predicted.total();
  const double tb = b.predicted.total();
  if (ta != tb) return ta < tb;
  const auto& ca = a.candidate;
  const auto& cb = b.candidate;
  if (ca.replica.repository != cb.replica.repository)
    return ca.replica.repository < cb.replica.repository;
  if (ca.compute_site != cb.compute_site)
    return ca.compute_site < cb.compute_site;
  if (ca.replica.storage_nodes != cb.replica.storage_nodes)
    return ca.replica.storage_nodes < cb.replica.storage_nodes;
  return ca.compute_nodes < cb.compute_nodes;
}

/// Everything one query needs for its (pure) evaluate phase.
struct PreparedQuery {
  const SelectionQuery* query = nullptr;
  std::shared_ptr<const CompiledApp> compiled;  ///< null: unknown app
  std::shared_ptr<const ReplicaShard> shard;
  std::size_t shard_index = 0;  ///< valid when needs_shard
  bool needs_shard = false;
  std::string error;  ///< non-empty: fail without evaluating
};

/// Ranks one prepared query against its captured snapshots. Pure: touches
/// nothing but the snapshots, so concurrent evaluation is free of shared
/// state.
SelectionResult evaluate(const PreparedQuery& p) {
  SelectionResult out;
  if (!p.error.empty()) {
    out.error = p.error;
    return out;
  }
  const SelectionQuery& q = *p.query;
  const Topology& topo = *p.compiled->topology;
  const auto replicas = p.shard->replicas_of(q.dataset);
  if (replicas.empty()) {
    out.error = "no replica of dataset '" + q.dataset + "'";
    return out;
  }

  std::vector<core::RankedCandidate> ranked;
  for (const auto& replica : replicas) {
    const auto* repo = topo.find_repository(replica.repository);
    // Snapshot skew: the batch captures the topology before its shards, so
    // a writer that registers a new repository site and then a replica on
    // it can publish a shard entry whose repository is absent from this
    // batch's (older) topology. That replica is unreachable for this
    // batch — the next batch's fresher topology will rank it.
    if (repo == nullptr) continue;
    for (std::size_t s = 0; s < topo.compute_sites.size(); ++s) {
      const auto& site = topo.compute_sites[s];
      const SitePredictor& predictor = p.compiled->site_predictors[s];
      if (!predictor.predictable()) continue;
      const auto* wan = topo.find_link(replica.repository, site.id);
      if (wan == nullptr) continue;  // unreachable pair

      core::ProfileConfig target;
      target.data_nodes = replica.storage_nodes;
      target.dataset_bytes = q.dataset_bytes;
      target.bandwidth_Bps = wan->per_link_Bps;
      target.data_cluster = repo->cluster.name;
      target.compute_cluster = site.cluster.name;
      // 64-bit sweep counter: `c *= 2` on an int is UB once
      // available_nodes exceeds INT_MAX/2.
      for (long long c = 1; c <= site.available_nodes; c *= 2) {
        if (c < replica.storage_nodes) continue;  // FREERIDE-G: M >= N
        ++out.candidates_considered;
        const int nodes = static_cast<int>(c);
        target.compute_nodes = nodes;
        core::RankedCandidate rc;
        rc.candidate = {replica, site.id, nodes, *wan};
        rc.predicted = predictor.predict(target);
        rc.used_hetero_scaling = predictor.uses_hetero_scaling();
        ranked.push_back(std::move(rc));
      }
    }
  }
  if (ranked.empty()) {
    out.error = "no predictable candidate for dataset '" + q.dataset + "'";
    return out;
  }

  const std::size_t k =
      std::min<std::size_t>(static_cast<std::size_t>(q.top_k), ranked.size());
  std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                    ranked_less);
  ranked.resize(k);
  out.ranked = std::move(ranked);
  return out;
}

}  // namespace

const core::RankedCandidate& SelectionResult::best() const {
  FGP_CHECK_MSG(ok() && !ranked.empty(),
                "no selection result: " << (error.empty() ? "empty ranking"
                                                          : error));
  return ranked.front();
}

SelectionService::SelectionService(const ShardedCatalog* catalog,
                                   util::ThreadPool* pool,
                                   obs::Registry* metrics)
    : catalog_(catalog), pool_(pool), metrics_(metrics) {
  FGP_CHECK_MSG(catalog_ != nullptr, "service needs a sharded catalog");
}

void SelectionService::register_app(
    core::Profile profile, core::PredictorOptions options,
    std::map<std::string, core::ScalingFactors> scalers) {
  cache_.register_app(std::move(profile), options, std::move(scalers));
}

std::vector<SelectionResult> SelectionService::query_batch(
    std::span<const SelectionQuery> queries) const {
  const util::Stopwatch batch_clock;
  // Observers are all Host-domain (wall-clock) consumers: recording for
  // them happens into per-query indexed slots and is folded at batch end
  // in query order, so attaching them cannot perturb rankings or
  // deterministic counters (DESIGN.md §17).
  const ServiceObservers o = observers_;
  obs::TraceRecorder* trace =
      o.trace != nullptr && o.trace->host_enabled() ? o.trace : nullptr;
  const bool want_latency =
      o.latency != nullptr || o.slowlog != nullptr || trace != nullptr;
  // Maps batch-clock offsets onto the trace recorder's host epoch (both
  // are util::Stopwatch instants, so the skew is one constant).
  const double trace_epoch =
      trace != nullptr ? trace->host_now() - batch_clock.seconds() : 0.0;

  // --- serial prepare phase (deterministic counters live here) ----------
  const auto topo = catalog_->topology();
  unsigned long long hits = 0;
  unsigned long long misses = 0;
  // Each touched shard is loaded exactly once per batch, so every query on
  // the same dataset ranks against the same snapshot even while writers
  // publish. The map size is the batch's shard fan-out.
  std::map<std::size_t, std::shared_ptr<const ReplicaShard>> shards_touched;
  std::vector<PreparedQuery> prepared(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const SelectionQuery& q = queries[i];
    PreparedQuery& p = prepared[i];
    p.query = &q;
    if (q.app.empty() || q.dataset.empty()) {
      p.error = "query needs an app and a dataset";
      continue;
    }
    if (!(q.dataset_bytes > 0.0) || !std::isfinite(q.dataset_bytes)) {
      p.error = "query needs positive finite dataset_bytes";
      continue;
    }
    if (q.top_k < 1) {
      p.error = "query needs top_k >= 1";
      continue;
    }
    p.compiled = cache_.resolve(q.app, topo, &hits, &misses);
    if (p.compiled == nullptr) {
      p.error = "no profile registered for app '" + q.app + "'";
      continue;
    }
    p.shard_index = shard_of(q.dataset, catalog_->shard_count());
    p.needs_shard = true;
    shards_touched.try_emplace(p.shard_index);
  }
  const double prepare_end = want_latency ? batch_clock.seconds() : 0.0;

  // --- shard-load phase: one snapshot per touched shard ------------------
  for (auto& [index, snapshot] : shards_touched)
    snapshot = catalog_->shard(index);
  for (PreparedQuery& p : prepared)
    if (p.needs_shard) p.shard = shards_touched.find(p.shard_index)->second;
  const double shard_load_end = want_latency ? batch_clock.seconds() : 0.0;

  if (metrics_ != nullptr) {
    metrics_->add("service.queries", static_cast<double>(queries.size()));
    metrics_->add("service.cache_hits", static_cast<double>(hits));
    metrics_->add("service.cache_misses", static_cast<double>(misses));
    metrics_->add("service.shard_fanout",
                  static_cast<double>(shards_touched.size()));
  }

  // --- parallel evaluate phase (indexed result slots) --------------------
  // Latency capture uses the same indexed-slot discipline as the results:
  // slot i is owned by the task evaluating query i, so the parallel phase
  // records uncontended and the batch end folds serially in query order.
  std::vector<SelectionResult> results(queries.size());
  std::vector<double> q_begin;
  std::vector<double> q_end;
  if (want_latency) {
    q_begin.assign(queries.size(), 0.0);
    q_end.assign(queries.size(), 0.0);
  }
  const double evaluate_begin = want_latency ? batch_clock.seconds() : 0.0;
  const auto run_one = [&](std::size_t i) {
    if (want_latency) {
      q_begin[i] = batch_clock.seconds();
      results[i] = evaluate(prepared[i]);
      q_end[i] = batch_clock.seconds();
    } else {
      results[i] = evaluate(prepared[i]);
    }
  };
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < prepared.size(); ++i) run_one(i);
  } else {
    pool_->parallel_for(prepared.size(), run_one);
  }
  const double evaluate_end = want_latency ? batch_clock.seconds() : 0.0;

  // --- batch-end fold (serial, query order; all Host-domain) -------------
  if (o.latency != nullptr) {
    obs::HdrHistogram batch_hist;
    for (std::size_t i = 0; i < queries.size(); ++i)
      batch_hist.observe_seconds(q_end[i] - q_begin[i]);
    std::lock_guard lock(latency_mu_);
    o.latency->merge(batch_hist);
  }
  if (o.slowlog != nullptr) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      const double latency = q_end[i] - q_begin[i];
      if (!(latency > o.slowlog->threshold_seconds())) continue;
      obs::SlowQueryEntry entry;
      entry.app = queries[i].app;
      entry.dataset = queries[i].dataset;
      entry.latency_s = latency;
      entry.candidates_considered = results[i].candidates_considered;
      if (results[i].ok() && !results[i].ranked.empty()) {
        const core::RankedCandidate& best = results[i].ranked.front();
        entry.chosen = best.candidate.replica.repository + "/" +
                       best.candidate.compute_site + "/" +
                       std::to_string(best.candidate.compute_nodes);
      }
      entry.error = results[i].error;
      entry.topology_version = topo->version;
      o.slowlog->maybe_record(std::move(entry));
    }
  }
  if (trace != nullptr) {
    trace->host_span("service", "prepare", trace_epoch,
                     trace_epoch + prepare_end);
    trace->host_span("service", "shard-load", trace_epoch + prepare_end,
                     trace_epoch + shard_load_end);
    trace->host_span("service", "evaluate", trace_epoch + evaluate_begin,
                     trace_epoch + evaluate_end);
    for (std::size_t i = 0; i < queries.size(); ++i)
      trace->host_span("service/query", queries[i].app + ":" + queries[i].dataset,
                       trace_epoch + q_begin[i], trace_epoch + q_end[i]);
  }

  if (metrics_ != nullptr)
    metrics_->observe("service.batch_seconds", batch_clock.seconds(),
                      obs::Domain::Host);
  return results;
}

SelectionResult SelectionService::query(const SelectionQuery& q) const {
  return query_batch({&q, 1}).front();
}

}  // namespace fgp::service
