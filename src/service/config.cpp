#include "service/config.h"

#include <cmath>
#include <string>

#include "obs/json.h"
#include "util/check.h"

namespace fgp::service {

namespace {

/// A bounded positive integer field: present => number, integral, in
/// [1, bound]. ConfigError spells out which field failed.
int int_field(const obs::json::Value& v, const char* name, int fallback,
              int bound) {
  const auto* field = v.find(name);
  if (field == nullptr) return fallback;
  if (!field->is_number())
    throw util::ConfigError(std::string("service config field '") + name +
                            "' must be a number");
  const double d = field->as_number();
  if (!(d >= 1.0) || d > static_cast<double>(bound) ||
      d != std::floor(d))
    throw util::ConfigError(std::string("service config field '") + name +
                            "' must be an integer in [1, " +
                            std::to_string(bound) + "]");
  return static_cast<int>(d);
}

/// A bounded non-negative double field: present => finite number in
/// [0, bound].
double double_field(const obs::json::Value& v, const char* name,
                    double fallback, double bound) {
  const auto* field = v.find(name);
  if (field == nullptr) return fallback;
  if (!field->is_number())
    throw util::ConfigError(std::string("service config field '") + name +
                            "' must be a number");
  const double d = field->as_number();
  if (!(d >= 0.0) || d > bound || !std::isfinite(d))
    throw util::ConfigError(std::string("service config field '") + name +
                            "' must be a finite number in [0, " +
                            std::to_string(bound) + "]");
  return d;
}

}  // namespace

ServiceConfig parse_service_config(std::string_view json_text) {
  const obs::json::Value doc = obs::json::parse(json_text);
  if (!doc.is_object())
    throw util::ConfigError("service config must be a JSON object");
  for (const auto& member : doc.as_object()) {
    const std::string& key = member.first;
    if (key != "shards" && key != "max_top_k" && key != "max_batch" &&
        key != "slow_query_threshold_s" && key != "slowlog_capacity")
      throw util::ConfigError("unknown service config field '" + key + "'");
  }
  ServiceConfig out;
  out.shards = int_field(doc, "shards", out.shards, 4096);
  out.max_top_k = int_field(doc, "max_top_k", out.max_top_k, 1 << 20);
  out.max_batch = int_field(doc, "max_batch", out.max_batch, 1 << 24);
  out.slow_query_threshold_s = double_field(
      doc, "slow_query_threshold_s", out.slow_query_threshold_s, 3600.0);
  out.slowlog_capacity =
      int_field(doc, "slowlog_capacity", out.slowlog_capacity, 1 << 20);
  return out;
}

std::vector<SelectionQuery> parse_query_batch(std::string_view json_text,
                                              const ServiceConfig& config) {
  const obs::json::Value doc = obs::json::parse(json_text);
  if (!doc.is_array())
    throw util::ConfigError("query batch must be a JSON array");
  const auto& items = doc.as_array();
  if (items.size() > static_cast<std::size_t>(config.max_batch))
    throw util::ConfigError("query batch of " + std::to_string(items.size()) +
                            " exceeds max_batch " +
                            std::to_string(config.max_batch));

  std::vector<SelectionQuery> out;
  out.reserve(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    const auto& item = items[i];
    const std::string at = "query " + std::to_string(i) + ": ";
    if (!item.is_object())
      throw util::ConfigError(at + "must be a JSON object");
    for (const auto& member : item.as_object()) {
      const std::string& key = member.first;
      if (key != "app" && key != "dataset" && key != "dataset_bytes" &&
          key != "top_k")
        throw util::ConfigError(at + "unknown field '" + key + "'");
    }
    SelectionQuery q;
    const auto* app = item.find("app");
    if (app == nullptr || !app->is_string() || app->as_string().empty())
      throw util::ConfigError(at + "needs a non-empty string 'app'");
    q.app = app->as_string();
    const auto* dataset = item.find("dataset");
    if (dataset == nullptr || !dataset->is_string() ||
        dataset->as_string().empty())
      throw util::ConfigError(at + "needs a non-empty string 'dataset'");
    q.dataset = dataset->as_string();
    const auto* bytes = item.find("dataset_bytes");
    if (bytes == nullptr || !bytes->is_number())
      throw util::ConfigError(at + "needs a number 'dataset_bytes'");
    q.dataset_bytes = bytes->as_number();
    if (!(q.dataset_bytes > 0.0) || !std::isfinite(q.dataset_bytes))
      throw util::ConfigError(at + "'dataset_bytes' must be positive and "
                                   "finite");
    const auto* top_k = item.find("top_k");
    if (top_k != nullptr) {
      if (!top_k->is_number())
        throw util::ConfigError(at + "'top_k' must be a number");
      const double k = top_k->as_number();
      if (!(k >= 1.0) || k > static_cast<double>(config.max_top_k) ||
          k != std::floor(k))
        throw util::ConfigError(at + "'top_k' must be an integer in [1, " +
                                std::to_string(config.max_top_k) + "]");
      q.top_k = static_cast<int>(k);
    }
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace fgp::service
