#include "service/sharded_catalog.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace fgp::service {

namespace {

/// FNV-1a 64-bit; stable across platforms so shard assignment (and the
/// fan-out counters derived from it) is deterministic.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ull;
  }
  return h;
}

bool link_less(const Topology::Link& a, const Topology::Link& b) {
  if (a.repository != b.repository) return a.repository < b.repository;
  return a.compute < b.compute;
}

/// Runs before shards_ is sized in the member-init list, so an absurd
/// shard count throws the documented ConfigError instead of attempting a
/// giant vector allocation (bad_alloc).
std::size_t validated_shard_count(std::size_t shards) {
  if (shards < 1 || shards > 4096)
    throw util::ConfigError("shard count must be in [1, 4096], got " +
                            std::to_string(shards));
  return shards;
}

}  // namespace

const grid::ComputeSite* Topology::find_compute(std::string_view id) const {
  for (const auto& s : compute_sites)
    if (s.id == id) return &s;
  return nullptr;
}

const grid::RepositorySite* Topology::find_repository(
    std::string_view id) const {
  for (const auto& s : repository_sites)
    if (s.id == id) return &s;
  return nullptr;
}

const sim::WanSpec* Topology::find_link(std::string_view repository,
                                        std::string_view compute) const {
  const auto it = std::lower_bound(
      links.begin(), links.end(), std::make_pair(repository, compute),
      [](const Link& l, const std::pair<std::string_view, std::string_view>&
                            key) {
        if (l.repository != key.first) return l.repository < key.first;
        return l.compute < key.second;
      });
  if (it == links.end() || it->repository != repository ||
      it->compute != compute)
    return nullptr;
  return &it->wan;
}

std::span<const grid::Replica> ReplicaShard::replicas_of(
    std::string_view dataset) const {
  const auto lo = std::lower_bound(
      replicas.begin(), replicas.end(), dataset,
      [](const grid::Replica& r, std::string_view d) {
        return std::string_view(r.dataset) < d;
      });
  const auto hi = std::upper_bound(
      lo, replicas.end(), dataset,
      [](std::string_view d, const grid::Replica& r) {
        return d < std::string_view(r.dataset);
      });
  return {lo, hi};
}

std::size_t shard_of(std::string_view dataset, std::size_t shard_count) {
  FGP_ASSERT(shard_count > 0);
  return static_cast<std::size_t>(fnv1a(dataset) % shard_count);
}

ShardedCatalog::ShardedCatalog(std::size_t shards)
    : shards_(validated_shard_count(shards)) {
  topology_.store(std::make_shared<const Topology>());
  for (auto& s : shards_) s.store(std::make_shared<const ReplicaShard>());
}

void ShardedCatalog::register_compute_site(grid::ComputeSite site) {
  FGP_CHECK_MSG(!site.id.empty(), "compute site needs an id");
  FGP_CHECK_MSG(site.available_nodes > 0, "compute site needs nodes");
  const std::lock_guard<std::mutex> lock(write_mu_);
  auto next = std::make_shared<Topology>(*topology_.load());
  FGP_CHECK_MSG(next->find_compute(site.id) == nullptr,
                "duplicate compute site " << site.id);
  next->compute_sites.push_back(std::move(site));
  next->version++;
  topology_.store(std::shared_ptr<const Topology>(std::move(next)));
}

void ShardedCatalog::register_repository_site(grid::RepositorySite site) {
  FGP_CHECK_MSG(!site.id.empty(), "repository site needs an id");
  FGP_CHECK_MSG(site.available_nodes > 0, "repository site needs nodes");
  const std::lock_guard<std::mutex> lock(write_mu_);
  auto next = std::make_shared<Topology>(*topology_.load());
  FGP_CHECK_MSG(next->find_repository(site.id) == nullptr,
                "duplicate repository site " << site.id);
  next->repository_sites.push_back(std::move(site));
  next->version++;
  topology_.store(std::shared_ptr<const Topology>(std::move(next)));
}

void ShardedCatalog::register_link(const grid::SiteId& repository,
                                   const grid::SiteId& compute,
                                   sim::WanSpec wan) {
  const std::lock_guard<std::mutex> lock(write_mu_);
  auto next = std::make_shared<Topology>(*topology_.load());
  FGP_CHECK_MSG(next->find_repository(repository) != nullptr,
                "unknown repository site: " << repository);
  FGP_CHECK_MSG(next->find_compute(compute) != nullptr,
                "unknown compute site: " << compute);
  Topology::Link link{repository, compute, wan};
  const auto it = std::lower_bound(next->links.begin(), next->links.end(),
                                   link, link_less);
  FGP_CHECK_MSG(it == next->links.end() || it->repository != repository ||
                    it->compute != compute,
                "duplicate link " << repository << " -> " << compute);
  next->links.insert(it, std::move(link));
  next->version++;
  topology_.store(std::shared_ptr<const Topology>(std::move(next)));
}

void ShardedCatalog::register_replica(grid::Replica replica) {
  std::vector<grid::Replica> one;
  one.push_back(std::move(replica));
  register_replicas(std::move(one));
}

void ShardedCatalog::register_replicas(std::vector<grid::Replica> replicas) {
  if (replicas.empty()) return;
  const std::lock_guard<std::mutex> lock(write_mu_);
  const auto topo = topology_.load();
  // Validate against the current topology first so a bad entry publishes
  // nothing (all-or-nothing, matching GridCatalog's per-entry checks).
  for (const auto& r : replicas) {
    const auto* repo = topo->find_repository(r.repository);
    FGP_CHECK_MSG(repo != nullptr,
                  "unknown repository site: " << r.repository);
    FGP_CHECK_MSG(r.storage_nodes > 0 &&
                      r.storage_nodes <= repo->available_nodes,
                  "replica of " << r.dataset << " wants " << r.storage_nodes
                                << " nodes, site " << repo->id << " has "
                                << repo->available_nodes);
  }

  // Partition the batch, then copy-on-publish only the touched shards.
  std::vector<std::vector<grid::Replica>> per_shard(shards_.size());
  for (auto& r : replicas)
    per_shard[shard_of(r.dataset, shards_.size())].push_back(std::move(r));
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    auto next = std::make_shared<ReplicaShard>(*shards_[s].load());
    next->replicas.reserve(next->replicas.size() + per_shard[s].size());
    for (auto& r : per_shard[s]) next->replicas.push_back(std::move(r));
    // Registration order within a dataset must survive the re-sort
    // (GridCatalog enumeration parity), hence stable_sort.
    std::stable_sort(next->replicas.begin(), next->replicas.end(),
                     [](const grid::Replica& a, const grid::Replica& b) {
                       return a.dataset < b.dataset;
                     });
    shards_[s].store(std::shared_ptr<const ReplicaShard>(std::move(next)));
  }
}

std::shared_ptr<const Topology> ShardedCatalog::topology() const {
  return topology_.load();
}

std::shared_ptr<const ReplicaShard> ShardedCatalog::shard(
    std::size_t index) const {
  FGP_CHECK_MSG(index < shards_.size(),
                "shard index " << index << " out of range (catalog has "
                               << shards_.size() << ")");
  return shards_[index].load();
}

std::shared_ptr<const ReplicaShard> ShardedCatalog::shard_for(
    std::string_view dataset) const {
  return shards_[shard_of(dataset, shards_.size())].load();
}

std::size_t ShardedCatalog::replica_count() const {
  std::size_t total = 0;
  for (const auto& s : shards_) total += s.load()->replicas.size();
  return total;
}

std::vector<grid::Candidate> ShardedCatalog::enumerate_candidates(
    const Topology& topo, const ReplicaShard& shard,
    const std::string& dataset) {
  std::vector<grid::Candidate> out;
  for (const auto& replica : shard.replicas_of(dataset)) {
    for (const auto& site : topo.compute_sites) {
      const auto* wan = topo.find_link(replica.repository, site.id);
      if (wan == nullptr) continue;  // unreachable pair
      // 64-bit sweep counter: `c *= 2` on an int is UB once
      // available_nodes exceeds INT_MAX/2.
      for (long long c = 1; c <= site.available_nodes; c *= 2) {
        if (c < replica.storage_nodes) continue;  // FREERIDE-G: M >= N
        out.push_back({replica, site.id, static_cast<int>(c), *wan});
      }
    }
  }
  return out;
}

}  // namespace fgp::service
