// sharded_catalog.h — a read-mostly replica catalog scaled to millions of
// entries.
//
// grid::GridCatalog is the per-bench information service: a flat vector it
// scans linearly, mutated and read by one caller. The service layer needs
// the grid-middleware shape instead (DESIGN.md §16): a long-lived catalog
// answering a heavy concurrent stream of "which replicas hold this
// dataset?" lookups while replicas keep arriving. ShardedCatalog gets
// there with two ingredients:
//
//   * Replica entries are hash-partitioned over N shards by dataset name,
//     each shard an *immutable* snapshot (replicas sorted by dataset, so a
//     lookup is one binary search) published through
//     std::atomic<std::shared_ptr>. Readers load the pointer and never
//     lock; writers copy the affected shard, apply the change, and swap
//     the pointer (copy-on-publish). A reader holding a snapshot keeps it
//     alive for as long as it needs — a concurrent publish can never pull
//     data out from under an in-flight query.
//
//   * The small side of the catalog — compute sites, repository sites,
//     WAN links — lives in one Topology snapshot under the same
//     discipline, with a monotonically increasing version so caches keyed
//     on the topology (service::ProfileCache) can tell when their
//     compiled state went stale.
//
// Registration order is preserved within a dataset and within the site
// lists, so candidate enumeration visits candidates in exactly the order
// grid::GridCatalog would (pinned by tests/test_service.cpp parity tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "grid/catalog.h"

namespace fgp::service {

/// The site/link side of the catalog: one immutable snapshot, small
/// enough to copy whole on every registration. Site vectors preserve
/// registration order (enumeration order contract); `links` is sorted by
/// (repository, compute) for binary-search lookup.
struct Topology {
  struct Link {
    grid::SiteId repository;
    grid::SiteId compute;
    sim::WanSpec wan;
  };

  std::vector<grid::ComputeSite> compute_sites;
  std::vector<grid::RepositorySite> repository_sites;
  std::vector<Link> links;
  /// Bumped on every publish; caches compiled against a topology compare
  /// versions to detect staleness.
  std::uint64_t version = 0;

  /// nullptr when the id is unknown (readers decide whether that is an
  /// error or a skip).
  const grid::ComputeSite* find_compute(std::string_view id) const;
  const grid::RepositorySite* find_repository(std::string_view id) const;
  const sim::WanSpec* find_link(std::string_view repository,
                                std::string_view compute) const;
};

/// One shard's replica entries, sorted by dataset name; entries of the
/// same dataset keep their registration order (std::stable_sort on
/// publish).
struct ReplicaShard {
  std::vector<grid::Replica> replicas;
  /// The contiguous run of replicas for `dataset` (empty span when none).
  std::span<const grid::Replica> replicas_of(std::string_view dataset) const;
};

/// The shard index of `dataset` among `shard_count` shards (FNV-1a over
/// the name). Pure, so tests and fan-out accounting agree with the
/// catalog.
std::size_t shard_of(std::string_view dataset, std::size_t shard_count);

class ShardedCatalog {
 public:
  /// `shards` must be in [1, 4096] (ConfigError otherwise). More shards
  /// shrink the copy a single register_replica pays; the shard count is
  /// fixed for the catalog's lifetime so shard_of stays stable.
  explicit ShardedCatalog(std::size_t shards = 16);

  ShardedCatalog(const ShardedCatalog&) = delete;
  ShardedCatalog& operator=(const ShardedCatalog&) = delete;

  // --- writers (serialized internally, copy-on-publish) -------------------
  void register_compute_site(grid::ComputeSite site);
  void register_repository_site(grid::RepositorySite site);
  void register_link(const grid::SiteId& repository,
                     const grid::SiteId& compute, sim::WanSpec wan);
  void register_replica(grid::Replica replica);
  /// Bulk load: one sort + one publish per shard instead of a
  /// copy-on-publish per entry — the path a million-entry catalog takes.
  void register_replicas(std::vector<grid::Replica> replicas);

  // --- readers (lock-free snapshot loads) ---------------------------------
  std::shared_ptr<const Topology> topology() const;
  std::shared_ptr<const ReplicaShard> shard(std::size_t index) const;
  /// The shard holding `dataset`'s replicas.
  std::shared_ptr<const ReplicaShard> shard_for(
      std::string_view dataset) const;

  std::size_t shard_count() const { return shards_.size(); }
  /// Total replica entries across all shards (sums per-shard snapshot
  /// sizes; exact between publishes).
  std::size_t replica_count() const;

  /// Same contract as grid::GridCatalog::enumerate_candidates, evaluated
  /// against explicit snapshots so a batch that captured them stays
  /// consistent even while writers publish.
  static std::vector<grid::Candidate> enumerate_candidates(
      const Topology& topo, const ReplicaShard& shard,
      const std::string& dataset);

 private:
  // TSan caveat: libstdc++ implements atomic<shared_ptr> (_Sp_atomic in
  // bits/shared_ptr_atomic.h) by guarding a plain pointer with a lock bit
  // whose read-side unlock is memory_order_relaxed, so TSan cannot see
  // the happens-before edge between a reader's load() and the next
  // writer's store() and reports a false race on the pointer word —
  // suppressed via tools/sanitizers/tsan.supp (race:_Sp_atomic).
  std::atomic<std::shared_ptr<const Topology>> topology_;
  std::vector<std::atomic<std::shared_ptr<const ReplicaShard>>> shards_;
  /// Serializes writers only; readers never touch it.
  std::mutex write_mu_;
};

}  // namespace fgp::service
