// selection_service.h — prediction-as-a-service: the batched selection
// engine.
//
// The paper's driver — "choose a replica and computing configuration pair
// where the data processing can be performed with the minimum cost" — is
// promoted here from a per-bench object to a long-lived query engine. A
// SelectionService owns a ProfileCache over a ShardedCatalog and answers
// vectors of SelectionQuery concurrently over a borrowed work-stealing
// util::ThreadPool.
//
// Batch discipline (DESIGN.md §16):
//
//   1. A *serial* prepare phase, on the calling thread, captures one
//      topology snapshot for the whole batch, resolves each query's
//      CompiledApp through the cache, and loads each query's replica
//      shard. All deterministic counters (service.queries, cache
//      hits/misses, shard fan-out) are recorded here, in query order.
//   2. A *parallel* evaluate phase ranks each query's candidates into an
//      indexed result slot via pool->parallel_for. Every input is an
//      immutable snapshot captured in phase 1, and ties in predicted
//      total time break on the candidate's identity, so the results —
//      like a SweepRunner grid — are bit-identical serial vs any pool
//      size (pinned by tests/test_service.cpp).
//
// Writers may publish catalog updates at any time; an in-flight batch
// keeps ranking against the snapshots it captured.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "service/profile_cache.h"
#include "service/sharded_catalog.h"
#include "util/thread_pool.h"

namespace fgp::obs {
class HdrHistogram;
class Registry;
class SlowQueryLog;
class TraceRecorder;
}  // namespace fgp::obs

namespace fgp::service {

struct SelectionQuery {
  std::string app;
  std::string dataset;
  double dataset_bytes = 0.0;
  /// How many ranked candidates to return (cheapest first).
  int top_k = 1;
};

struct SelectionResult {
  /// Up to top_k candidates, cheapest predicted total first.
  std::vector<core::RankedCandidate> ranked;
  /// Candidates enumerated for the query. Compute sites whose predictor
  /// cannot predict are skipped whole, so their candidates are not
  /// counted; unreachable pairs (no WAN link) are likewise excluded.
  std::size_t candidates_considered = 0;
  /// Empty on success. A bad query (unknown app, no replicas, invalid
  /// bytes) fails alone; it never throws the batch away.
  std::string error;

  bool ok() const { return error.empty(); }
  const core::RankedCandidate& best() const;
};

/// Optional service-side observers, all borrowed and all
/// null-pointer-cheap: an untraced batch pays one pointer test per
/// observer. Everything they receive is wall-clock (Host-domain) data,
/// recorded from per-query indexed slots during the parallel evaluate
/// phase and folded *in query order* at batch end (DESIGN.md §17), so
/// attaching them never perturbs rankings or deterministic metrics.
struct ServiceObservers {
  /// Receives batch-level prepare/shard-load/evaluate spans and one
  /// "service/query" span per query. Spans are only recorded when the
  /// recorder has host recording enabled.
  obs::TraceRecorder* trace = nullptr;
  /// Receives one entry per query over the log's latency threshold.
  obs::SlowQueryLog* slowlog = nullptr;
  /// Receives every query's latency. The service serializes its merges
  /// internally; while attached, the histogram must not be written by
  /// anyone else concurrently with query_batch.
  obs::HdrHistogram* latency = nullptr;
};

class SelectionService {
 public:
  /// `catalog` must outlive the service. A non-null `pool` is borrowed
  /// for query_batch's evaluate phase (null = serial, the reference mode
  /// for determinism tests); `metrics` (optional) receives the service
  /// counters and the host-domain per-batch latency histogram.
  explicit SelectionService(const ShardedCatalog* catalog,
                            util::ThreadPool* pool = nullptr,
                            obs::Registry* metrics = nullptr);

  /// Registers an app the service can answer queries for (see
  /// ProfileCache::register_app).
  void register_app(core::Profile profile, core::PredictorOptions options,
                    std::map<std::string, core::ScalingFactors> scalers = {});

  /// Answers every query, results in query order (indexed slots).
  std::vector<SelectionResult> query_batch(
      std::span<const SelectionQuery> queries) const;

  /// Convenience single-query form.
  SelectionResult query(const SelectionQuery& q) const;

  const ShardedCatalog& catalog() const { return *catalog_; }

  /// Attaches (or detaches, with default-constructed observers) the
  /// service observers. Not synchronized with in-flight batches — wire
  /// observers up before serving traffic.
  void set_observers(const ServiceObservers& observers) {
    observers_ = observers;
  }

 private:
  const ShardedCatalog* catalog_;
  util::ThreadPool* pool_;
  obs::Registry* metrics_;
  ServiceObservers observers_;
  /// Serializes batch-end merges into observers_.latency when batches
  /// run concurrently (cold path: once per batch).
  mutable std::mutex latency_mu_;
  mutable ProfileCache cache_;
};

}  // namespace fgp::service
