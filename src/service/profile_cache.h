// profile_cache.h — compiled per-(app, topology) predictor state.
//
// core::ResourceSelector re-derives everything on every call: it probes
// the target cluster's interconnect (measure_ipc) for *every candidate*
// and rebuilds a Predictor/HeteroPredictor per candidate. Fine for one
// figure run; fatal for a service answering thousands of queries per
// second over the same handful of cluster kinds. The cache compiles, once
// per (app, topology version), one predictor per compute site — the IPC
// probe runs once per site, the hetero scalers are resolved once — and
// hands queries an immutable CompiledApp snapshot under shared_ptr.
//
// Cache fills happen on the query path but only from
// SelectionService::query_batch's *serial* prepare phase, so the
// hit/miss counters are deterministic-domain metrics: a batch stream
// replayed at any pool size produces byte-identical counts (DESIGN.md
// §16).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/selector.h"
#include "service/sharded_catalog.h"

namespace fgp::service {

/// One compute site's ready-to-run predictor: either a same-cluster
/// Predictor with the site's IPC parameters baked in, or the profile
/// cluster's predictor wrapped in hetero scaling factors. Sites with no
/// scaling factors and different hardware are unpredictable (the
/// ResourceSelector skip rule).
class SitePredictor {
 public:
  SitePredictor() = default;  ///< unpredictable
  explicit SitePredictor(core::Predictor same) : same_(std::move(same)) {}
  explicit SitePredictor(core::HeteroPredictor hetero)
      : hetero_(std::move(hetero)) {}

  bool predictable() const {
    return same_.has_value() || hetero_.has_value();
  }
  bool uses_hetero_scaling() const { return hetero_.has_value(); }

  /// Precondition: predictable().
  core::PredictedTime predict(const core::ProfileConfig& target) const;

 private:
  std::optional<core::Predictor> same_;
  std::optional<core::HeteroPredictor> hetero_;
};

/// Everything a query needs, compiled against one topology version. The
/// site_predictors vector is index-aligned with topology->compute_sites.
struct CompiledApp {
  std::string app;
  std::shared_ptr<const Topology> topology;
  core::Profile profile;
  std::vector<SitePredictor> site_predictors;
};

class ProfileCache {
 public:
  /// Declares an app the service can predict for. Re-registering an app
  /// replaces its profile and invalidates its compiled state.
  /// `options.ipc` carries the profile cluster's interconnect parameters
  /// and seeds the hetero base predictor — the same contract
  /// core::ResourceSelector has. Same-cluster sites get their IPC probed
  /// at compile time regardless.
  void register_app(core::Profile profile, core::PredictorOptions options,
                    std::map<std::string, core::ScalingFactors> scalers = {});

  /// The compiled state for `app` against `topo`; compiles (and caches)
  /// when missing or stale. Returns nullptr for unregistered apps.
  /// `hit`/`miss` (when non-null) are bumped exactly once per call —
  /// callers in a deterministic phase may feed them straight into
  /// deterministic-domain counters.
  std::shared_ptr<const CompiledApp> resolve(
      const std::string& app, const std::shared_ptr<const Topology>& topo,
      unsigned long long* hit = nullptr,
      unsigned long long* miss = nullptr);

  std::size_t registered_apps() const;

 private:
  struct AppEntry {
    core::Profile profile;
    core::PredictorOptions options;
    std::map<std::string, core::ScalingFactors> scalers;
    std::shared_ptr<const CompiledApp> compiled;  ///< null until first use
  };

  mutable std::mutex mu_;
  std::map<std::string, AppEntry> apps_;
};

}  // namespace fgp::service
